"""The unified AnalysisConfig layer and the backend registry.

Covers the consolidation contracts:

* construction-time validation — unknown/conflicting knobs raise
  :class:`~repro.errors.ConfigError` (and, for compatibility with every
  pre-consolidation pin, :class:`~repro.errors.AnalysisError`) naming
  the offending field;
* canonical serialization — ``to_wire``/``from_wire`` round-trip,
  ``digest`` is stable under field order and construction path and
  distinct for distinct configs (hypothesis property tests);
* tolerant-forward decoding — unknown wire keys are ignored outside the
  server's strict mode, and the sharded workers still load the
  pre-config bare knob tuple;
* reflection — the CLI ``analyze``/``analyze-delta``/``serve`` flag
  sets and the config field metadata are the same surface, 1:1;
* the registry — registering a stub backend makes it reachable from
  ``EPPEngine.analyze(backend="stub")`` and the CLI parser with zero
  edits outside the registration call.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser
from repro.core.backends import (
    REGISTRY,
    BackendInfo,
    ScalarBackend,
    default_backend,
)
from repro.core.config import (
    KNOB_KEYS,
    RESILIENCE_KNOB_KEYS,
    SHARDED_ONLY_KNOBS,
    SWEEP_KNOB_KEYS,
    WIRE_KNOB_KEYS,
    WIRE_VERSION,
    AnalysisConfig,
    field_metadata,
    knob_reference,
)
from repro.core.epp import EPPEngine
from repro.errors import AnalysisConfigError, AnalysisError, ConfigError
from repro.netlist.library import s27


# --------------------------------------------------------------- validation


class TestValidation:
    def test_unknown_knob_names_the_field(self):
        with pytest.raises(ConfigError, match="bogus"):
            AnalysisConfig.from_knobs(bogus=3)

    def test_unknown_knob_is_also_an_analysis_error(self):
        # The bridge class: pre-consolidation callers pinned
        # AnalysisError at the same boundaries the satellite wants
        # ConfigError at.
        with pytest.raises(AnalysisError, match="unknown analysis knob"):
            AnalysisConfig.from_knobs(bogus=3)

    def test_checkpoint_with_vector_backend_conflicts(self):
        with pytest.raises(ConfigError, match="checkpoint"):
            AnalysisConfig(backend="vector", checkpoint="/tmp/nope")

    def test_resilience_knobs_with_scalar_backend_conflict(self):
        with pytest.raises(ConfigError, match="sharded"):
            AnalysisConfig(backend="scalar", retries=2)

    def test_jobs_with_vector_backend_conflicts(self):
        with pytest.raises(ConfigError, match="jobs="):
            AnalysisConfig(backend="vector", jobs=2)

    def test_value_error_beats_conflict_error(self):
        # jobs=0 with a non-sharded backend must name the bad value,
        # not the cross-field conflict.
        with pytest.raises(ConfigError, match="jobs must be >= 1"):
            AnalysisConfig(backend="vector", jobs=0)

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="unknown EPP backend"):
            AnalysisConfig(backend="warp")

    def test_bad_schedule_rejected(self):
        with pytest.raises(ConfigError, match="schedule"):
            AnalysisConfig(schedule="sideways")

    def test_bad_retries_uses_flag_spelling(self):
        with pytest.raises(ConfigError, match="--retries must be >= 0"):
            AnalysisConfig(retries=-1)

    def test_deferred_conflict_caught_at_resolution(self):
        # No explicit backend: construction defers the conflict check
        # (the server injects its backend later) — resolution catches it.
        cfg = AnalysisConfig(retries=2)
        with pytest.raises(ConfigError, match="sharded"):
            cfg.require_backend_support("vector")
        cfg.require_backend_support("sharded")  # and sharded honors it

    def test_engine_rejects_config_plus_knobs(self):
        engine = EPPEngine(s27())
        with pytest.raises(ConfigError, match="not both"):
            engine.analyze(config=AnalysisConfig(), batch_size=4)


# ----------------------------------------------------------- derived tables


class TestDerivedTables:
    def test_knob_key_order_is_the_historical_order(self):
        assert KNOB_KEYS == (
            "backend", "batch_size", "jobs", "prune", "schedule", "cells",
            "chunking", "rows", "retries", "shard_timeout", "on_failure",
            "deadline", "fault_injector", "checkpoint",
        )

    def test_wire_keys_exclude_local_only_fields(self):
        assert "fault_injector" not in WIRE_KNOB_KEYS
        assert "checkpoint" not in WIRE_KNOB_KEYS
        assert "deadline" not in WIRE_KNOB_KEYS

    def test_resilience_keys_are_sharded_only_minus_jobs(self):
        assert RESILIENCE_KNOB_KEYS == tuple(
            k for k in SHARDED_ONLY_KNOBS if k != "jobs"
        )

    def test_sweep_keys(self):
        assert SWEEP_KNOB_KEYS == (
            "batch_size", "prune", "schedule", "cells", "chunking", "rows"
        )

    def test_knob_reference_covers_every_field(self):
        text = knob_reference()
        table = knob_reference(markdown=True)
        for key in KNOB_KEYS:
            assert key in text
            assert f"`{key}`" in table


# ------------------------------------------------- wire round-trip (property)


_WIRE_VALUES = {
    "backend": st.sampled_from([None, "scalar", "vector", "sharded"]),
    "batch_size": st.one_of(st.none(), st.integers(1, 64)),
    "jobs": st.one_of(st.none(), st.integers(1, 8)),
    "prune": st.sampled_from([None, True, False, "auto"]),
    "schedule": st.sampled_from([None, "auto", "cone", "input"]),
    "cells": st.sampled_from([None, "auto", "on", "off"]),
    "chunking": st.sampled_from([None, "auto", "adaptive", "fixed"]),
    "rows": st.sampled_from([None, "auto", "compact", "full"]),
    "retries": st.one_of(st.none(), st.integers(0, 5)),
    "shard_timeout": st.one_of(st.none(), st.floats(0.1, 60.0)),
    "on_failure": st.sampled_from([None, "retry", "degrade", "raise"]),
}


@st.composite
def wire_configs(draw):
    """Valid wire-representable configs (no construction conflicts)."""
    knobs = {key: draw(_WIRE_VALUES[key]) for key in _WIRE_VALUES}
    sharded_requested = any(
        knobs[key] is not None for key in ("jobs", "retries",
                                           "shard_timeout", "on_failure")
    )
    if sharded_requested and knobs["backend"] not in (None, "sharded"):
        knobs["backend"] = draw(st.sampled_from([None, "sharded"]))
    return AnalysisConfig(**knobs)


class TestWireRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(cfg=wire_configs())
    def test_to_wire_from_wire_round_trips(self, cfg):
        wire = cfg.to_wire()
        assert wire["version"] == WIRE_VERSION
        assert AnalysisConfig.from_wire(wire) == cfg

    @settings(max_examples=200, deadline=None)
    @given(cfg=wire_configs(), seed=st.integers(0, 2**32 - 1))
    def test_digest_stable_under_key_order(self, cfg, seed):
        import random

        wire = cfg.to_wire()
        items = list(wire.items())
        random.Random(seed).shuffle(items)
        assert AnalysisConfig.from_wire(dict(items)).digest() == cfg.digest()

    @settings(max_examples=200, deadline=None)
    @given(left=wire_configs(), right=wire_configs())
    def test_distinct_configs_digest_differently(self, left, right):
        if left == right:
            assert left.digest() == right.digest()
        else:
            assert left.digest() != right.digest()

    @settings(max_examples=100, deadline=None)
    @given(cfg=wire_configs())
    def test_digest_stable_under_construction_path(self, cfg):
        rebuilt = AnalysisConfig.from_knobs(
            **{k: v for k, v in cfg.knobs().items() if v is not None}
        )
        assert rebuilt.digest() == cfg.digest()

    def test_digest_folds_in_wire_version(self):
        # The v2 stamp is what guarantees post-consolidation store keys
        # can never alias v1 (raw sorted-tuple) identities.
        assert b"analysis-config|v%d" % WIRE_VERSION  # spelling exists
        assert AnalysisConfig().digest() != ""

    def test_from_wire_is_tolerant_forward(self):
        wire = {"version": 99, "batch_size": 8, "hyperdrive": True}
        cfg = AnalysisConfig.from_wire(wire)
        assert cfg.batch_size == 8

    def test_from_wire_strict_rejects_unknown(self):
        with pytest.raises(ConfigError, match="hyperdrive"):
            AnalysisConfig.from_wire({"hyperdrive": True}, strict=True)

    def test_resolved_is_idempotent(self):
        cfg = AnalysisConfig(batch_size=4).resolved()
        assert cfg.resolved() == cfg
        assert cfg.prune == "auto" and cfg.schedule == "auto"

    def test_legacy_worker_tuple_still_loads(self):
        # A pool initialized by a pre-config parent ships the historical
        # bare 8-tuple; the worker decodes it into a config.
        from repro.core import epp_shard

        engine = EPPEngine(s27())
        payload = pickle.dumps(
            (engine.compiled, engine._sp, True, 4, "auto", "auto",
             "auto", "auto"),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        old = epp_shard._WORKER_PAYLOAD
        try:
            epp_shard._shard_worker_init(payload, key="legacy-test")
            backend = epp_shard._worker_backend()
            site = next(iter(engine.circuit.gates))
            result = backend.analyze_sites(
                [engine.compiled.index[site]]
            )
            assert len(result) == 1
        finally:
            epp_shard._WORKER_PAYLOAD = old
            epp_shard._WORKER_BACKENDS.pop("legacy-test", None)


# --------------------------------------------------------------- reflection


def _subcommand(name):
    parser = build_parser()
    actions = parser._subparsers._group_actions[0]
    return actions.choices[name]


def _option_flags(subparser):
    flags = set()
    for action in subparser._actions:
        for option in action.option_strings:
            if option.startswith("--"):
                flags.add(option)
    return flags


#: analyze flags that are not analysis knobs (sampling, SP computation,
#: reporting) — everything else must map 1:1 onto config fields.
_ANALYZE_EXTRAS = {"--help", "--top", "--sample", "--sp-method",
                   "--multi-cycle", "--csv"}
_DELTA_EXTRAS = {"--help", "--top", "--sp-method", "--verify", "--harden",
                 "--set-sp", "--tmr", "--rewire", "--replace"}


class TestCLIReflection:
    def test_analyze_flags_match_config_fields(self):
        flags = _option_flags(_subcommand("analyze")) - _ANALYZE_EXTRAS
        expected = {
            field_metadata(key)["cli"] for key in KNOB_KEYS
            if field_metadata(key)["cli"] is not None
        }
        assert flags == expected

    def test_delta_flags_match_delta_marked_fields(self):
        flags = _option_flags(_subcommand("analyze-delta")) - _DELTA_EXTRAS
        expected = {
            field_metadata(key)["cli"] for key in KNOB_KEYS
            if field_metadata(key)["cli"] is not None
            and field_metadata(key)["delta"]
        }
        assert flags == expected

    def test_harden_carries_the_same_knob_surface_as_delta(self):
        delta = _option_flags(_subcommand("analyze-delta")) - _DELTA_EXTRAS
        harden = {
            flag for flag in _option_flags(_subcommand("harden"))
            if flag in delta
        }
        assert harden == delta

    def test_serve_flags_cover_serve_marked_fields(self):
        flags = _option_flags(_subcommand("serve"))
        for key in KNOB_KEYS:
            serve_flag = field_metadata(key)["serve"]
            if serve_flag is not None:
                assert serve_flag in flags

    def test_wire_keys_match_protocol_export(self):
        from repro.server.protocol import WIRE_KNOB_KEYS as PROTOCOL_KEYS

        assert PROTOCOL_KEYS == WIRE_KNOB_KEYS


# ----------------------------------------------------------------- registry


def _register_stub():
    info = BackendInfo(
        name="stub",
        factory=lambda engine, config: ScalarBackend(engine),
        description="test-only: the scalar oracle under a fourth name",
    )
    REGISTRY.register(info)
    return info


class TestBackendRegistry:
    def test_duplicate_registration_rejected(self):
        _register_stub()
        try:
            with pytest.raises(ConfigError, match="already registered"):
                _register_stub()
        finally:
            REGISTRY.unregister("stub")

    def test_stub_backend_reaches_engine_analyze(self):
        _register_stub()
        try:
            engine = EPPEngine(s27())
            via_stub = engine.analyze(backend="stub")
            via_scalar = engine.analyze(backend="scalar")
            assert via_stub.keys() == via_scalar.keys()
            for site in via_stub:
                assert (
                    via_stub[site].p_sensitized
                    == via_scalar[site].p_sensitized
                )
        finally:
            REGISTRY.unregister("stub")

    def test_stub_backend_reaches_the_cli_with_zero_edits(self):
        _register_stub()
        try:
            analyze = _subcommand("analyze")
            for action in analyze._actions:
                if "--backend" in action.option_strings:
                    assert "stub" in action.choices
                    break
            else:  # pragma: no cover
                raise AssertionError("analyze has no --backend flag")
        finally:
            REGISTRY.unregister("stub")

    def test_stub_backend_honors_sharded_only_guard(self):
        _register_stub()
        try:
            with pytest.raises(ConfigError, match="sharded"):
                AnalysisConfig(backend="stub", retries=1)
        finally:
            REGISTRY.unregister("stub")

    def test_unknown_backend_error_lists_choices(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisConfigError, match="choose from"):
            engine.analyze(backend="warp")

    def test_default_backend_is_registered(self):
        assert default_backend() in REGISTRY.names()
