"""SEU-site collapsing and dominant-path extraction."""

import pytest

from repro.core.collapse import collapse_seu_sites
from repro.core.epp import EPPEngine
from repro.errors import AnalysisError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import random_combinational
from repro.netlist.library import FIGURE1_SIGNAL_PROBS, figure1_circuit, s27

from tests.helpers import exhaustive_p_sensitized


def chain_circuit():
    """a -> inv1 -> buf1 -> inv2 -> PO, plus a side branch breaking one link."""
    circuit = Circuit("chains")
    circuit.add_input("a")
    circuit.add_gate("inv1", GateType.NOT, ["a"])
    circuit.add_gate("buf1", GateType.BUF, ["inv1"])
    circuit.add_gate("inv2", GateType.NOT, ["buf1"])
    circuit.add_input("b")
    circuit.add_gate("mix", GateType.AND, ["inv2", "b"])
    circuit.mark_output("mix")
    return circuit


class TestCollapse:
    def test_chain_collapses_to_one_class(self):
        equivalence = collapse_seu_sites(chain_circuit())
        chain_classes = [c for c in equivalence.classes if "inv1" in c]
        assert chain_classes == [["a", "inv1", "buf1", "inv2"]]
        assert equivalence.representative["a"] == "inv2"

    def test_fanout_breaks_the_chain(self):
        circuit = chain_circuit()
        # give inv1 a second fanout: no longer collapsible into buf1
        circuit.add_gate("tap", GateType.AND, ["inv1", "b"])
        circuit.mark_output("tap")
        equivalence = collapse_seu_sites(circuit)
        assert equivalence.representative["inv1"] == "inv1"

    def test_observable_driver_not_collapsed(self):
        circuit = Circuit("po_chain")
        circuit.add_input("a")
        circuit.add_gate("mid", GateType.NOT, ["a"])
        circuit.add_gate("out", GateType.BUF, ["mid"])
        circuit.mark_output("mid")  # mid is itself observable
        circuit.mark_output("out")
        equivalence = collapse_seu_sites(circuit)
        assert equivalence.representative["mid"] == "mid"

    def test_dff_driver_not_collapsed(self):
        circuit = Circuit("ff_chain")
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["a"])
        circuit.add_gate("h", GateType.BUF, ["g"])  # g also feeds a DFF
        circuit.add_dff("q", "g")
        circuit.add_gate("po", GateType.AND, ["h", "q"])
        circuit.mark_output("po")
        equivalence = collapse_seu_sites(circuit)
        assert equivalence.representative["g"] == "g"

    @pytest.mark.parametrize("seed", range(4))
    def test_collapsed_sites_share_exact_p_sensitized(self, seed):
        circuit = random_combinational(6, 40, seed=400 + seed)
        equivalence = collapse_seu_sites(circuit)
        for members in equivalence.classes:
            truths = {exhaustive_p_sensitized(circuit, m) for m in members}
            assert len(truths) == 1, members

    def test_collapsed_analyze_matches_plain_analyze(self):
        circuit = s27()
        engine = EPPEngine(circuit)
        plain = engine.analyze()
        collapsed = engine.analyze(collapse=True)
        assert set(plain) == set(collapsed)
        for site in plain:
            assert collapsed[site].p_sensitized == pytest.approx(
                plain[site].p_sensitized, abs=1e-12
            )

    def test_savings_counted(self):
        equivalence = collapse_seu_sites(chain_circuit())
        assert equivalence.n_saved_analyses >= 3

    def test_collapsed_members_own_their_sink_values(self):
        """Regression: collapsed members used to share one sink_values dict
        with their representative, so mutating one result corrupted every
        sibling in the equivalence class."""
        engine = EPPEngine(chain_circuit())
        results = engine.analyze(collapse=True)
        assert results["buf1"].sink_values  # chain reaches the PO
        assert results["buf1"].sink_values is not results["inv1"].sink_values
        results["buf1"].sink_values.clear()
        assert results["inv1"].sink_values, "sibling result was corrupted"

    def test_members_of(self):
        equivalence = collapse_seu_sites(chain_circuit())
        assert equivalence.members_of("buf1") == ["a", "inv1", "buf1", "inv2"]
        assert equivalence.members_of("mix") == ["mix"]


class TestDominantPath:
    def test_figure1_prefers_the_strong_branch(self):
        circuit = figure1_circuit()
        from repro.probability import signal_probabilities

        sp = signal_probabilities(
            circuit, input_probs={**FIGURE1_SIGNAL_PROBS, "A": 0.5}
        )
        engine = EPPEngine(circuit, signal_probs=sp)
        path = engine.dominant_path("A")
        names = [name for name, _ in path]
        # E->G carries 0.7 error probability vs D's 0.2: the dominant route.
        assert names == ["A", "E", "G", "H"]
        assert path[0][1] == pytest.approx(1.0)

    def test_explicit_sink_selection(self):
        circuit = figure1_circuit()
        engine = EPPEngine(circuit)
        path = engine.dominant_path("A", sink="H")
        assert path[-1][0] == "H"

    def test_unreachable_sink_rejected(self, c17_circuit):
        engine = EPPEngine(c17_circuit)
        with pytest.raises(AnalysisError, match="not a reachable sink"):
            engine.dominant_path("N19", sink="N22")  # N19 only reaches N23

    def test_chain_path_is_the_chain(self):
        circuit = chain_circuit()
        engine = EPPEngine(circuit)
        path = engine.dominant_path("a")
        assert [name for name, _ in path] == ["a", "inv1", "buf1", "inv2", "mix"]

    def test_no_sink_returns_empty(self):
        circuit = Circuit("deadend")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("dead", GateType.NOT, ["b"])
        circuit.add_gate("po", GateType.BUF, ["a"])
        circuit.mark_output("po")
        engine = EPPEngine(circuit)
        assert engine.dominant_path("dead") == []

    def test_path_endpoints_and_probabilities(self, c17_circuit):
        """A dominant path starts at the site with error probability 1,
        ends at a sink, and every step is a real fanin edge.  (Error
        probability is NOT monotone along the path: reconverging branches
        can jointly exceed either single branch.)"""
        engine = EPPEngine(c17_circuit)
        compiled = engine.compiled
        sinks = {compiled.names[s] for s in compiled.sink_ids}
        for site in c17_circuit.gates:
            path = engine.dominant_path(site)
            assert path[0][0] == site
            assert path[0][1] == pytest.approx(1.0)
            assert path[-1][0] in sinks
            for (driver, _), (user, _) in zip(path, path[1:]):
                assert driver in c17_circuit.node(user).fanin
            assert all(0.0 <= p <= 1.0 + 1e-12 for _, p in path)
