"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    AnalysisError,
    ConfigError,
    NetlistError,
    ParseError,
    ProbabilityError,
    ReproError,
    SimulationError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            NetlistError,
            ParseError,
            ValidationError,
            SimulationError,
            ProbabilityError,
            AnalysisError,
            ConfigError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_parse_and_validation_are_netlist_errors(self):
        assert issubclass(ParseError, NetlistError)
        assert issubclass(ValidationError, NetlistError)

    def test_one_except_clause_catches_everything(self):
        with pytest.raises(ReproError):
            raise ParseError("bad line", 3)


class TestParseError:
    def test_line_number_in_message(self):
        error = ParseError("unexpected token", line_number=42)
        assert "line 42" in str(error)
        assert error.line_number == 42

    def test_no_line_number(self):
        error = ParseError("general problem")
        assert error.line_number is None
        assert "line" not in str(error)


class TestValidationError:
    def test_collects_problems(self):
        error = ValidationError(["a is bad", "b is bad"])
        assert error.problems == ["a is bad", "b is bad"]
        assert "2 validation problem(s)" in str(error)

    def test_long_lists_are_summarized(self):
        error = ValidationError([f"problem {i}" for i in range(9)])
        assert "and 4 more" in str(error)
