"""Crash-durable sharded sweeps (PR 9): checkpoint journal + recovery.

Two layers under test.  :mod:`repro.core.durable` is the record
primitive — atomic temp-file+rename writes, a checksummed header, and
quarantine-don't-delete handling of anything that fails verification.
:mod:`repro.core.checkpoint` journals each finished shard of a sharded
sweep through it, keyed by the payload digest, so a restarted engine
loads finished shards checksum-verified from disk and only re-sweeps
the rest — with the merged result pinned ``np.array_equal`` to a clean
run, including after a kill-9 of the engine host mid-sweep (the @slow
chaos test at the bottom, nightly in CI).
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.checkpoint import ShardCheckpoint, shard_digest
from repro.core.durable import (
    CorruptRecordError,
    atomic_write_bytes,
    checksum_of,
    quarantine_file,
    read_record,
    sweep_temp_files,
    write_record,
)
from repro.core.epp import EPPEngine
from repro.core.epp_shard import ShardedEPPEngine
from repro.errors import CheckpointError
from repro.netlist.generate import generate_iscas


def repro_segments() -> set[str]:
    from repro.core.epp_shard import _SHM_NAME_PREFIX

    if not os.path.isdir("/dev/shm"):
        return set()
    return {
        name for name in os.listdir("/dev/shm")
        if name.startswith(_SHM_NAME_PREFIX)
    }


# --------------------------------------------------------------------------
# The durable record primitive.
# --------------------------------------------------------------------------


class TestDurableRecords:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "r.bin"
        write_record(path, b"payload", {"shard": 3})
        meta, payload = read_record(path)
        assert payload == b"payload"
        assert meta["shard"] == 3
        assert meta["checksum"] == checksum_of(b"payload")

    def test_no_tmp_residue_after_write(self, tmp_path):
        write_record(tmp_path / "r.bin", b"payload", {})
        assert [p.name for p in tmp_path.iterdir()] == ["r.bin"]

    def test_missing_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_record(tmp_path / "absent.bin")

    @pytest.mark.parametrize("mutation", ["flip", "truncate", "magic"])
    def test_corruption_detected(self, tmp_path, mutation):
        path = tmp_path / "r.bin"
        write_record(path, b"payload-bytes", {"shard": 0})
        blob = bytearray(path.read_bytes())
        if mutation == "flip":
            blob[-4] ^= 0xFF
        elif mutation == "truncate":
            blob = blob[:-3]
        else:
            blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CorruptRecordError):
            read_record(path)

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_bytes(path, b"old-contents")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_quarantine_moves_not_deletes(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"evidence")
        moved = quarantine_file(path, tmp_path / "quarantine")
        assert not path.exists()
        assert moved is not None and os.path.exists(moved)
        with open(moved, "rb") as handle:
            assert handle.read() == b"evidence"

    def test_sweep_temp_files_recursive(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "keep.bin").write_bytes(b"x")
        (tmp_path / ".a.tmp").write_bytes(b"partial")
        (tmp_path / "sub" / ".b.tmp").write_bytes(b"partial")
        assert sweep_temp_files(tmp_path) == 2
        assert (tmp_path / "keep.bin").exists()


# --------------------------------------------------------------------------
# The shard journal.
# --------------------------------------------------------------------------


def _shards():
    return [[0, 1, 2], [3, 4], [5, 6, 7]]


def _packed(seed: int):
    rng = np.random.default_rng(seed)
    return (rng.random(4), np.arange(seed, seed + 3), rng.random((3, 4)))


class TestShardCheckpoint:
    def test_checkpoint_store_load_round_trip(self, tmp_path):
        journal = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        assert not journal.stats["resumed"]
        packed = _packed(1)
        journal.store(1, packed)
        # A second open over the same directory resumes and serves the
        # shard back bit-identically; unfinished shards stay None.
        resumed = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        assert resumed.stats["resumed"]
        loaded = resumed.load(1)
        assert all(np.array_equal(a, b) for a, b in zip(loaded, packed))
        assert resumed.load(0) is None and resumed.load(2) is None
        assert resumed.stats["loaded"] == 1

    def test_checkpoint_foreign_run_is_wiped(self, tmp_path):
        first = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        first.store(0, _packed(1))
        # Different payload (knobs, circuit, site roster): the directory
        # is rebuilt for the new run, never cross-served.
        second = ShardCheckpoint.open(tmp_path / "ck", "payload-B", _shards())
        assert not second.stats["resumed"]
        assert second.load(0) is None

    def test_checkpoint_changed_shard_split_never_resumes(self, tmp_path):
        journal = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        journal.store(0, _packed(1))
        # Same payload key, different shard split: the run key covers the
        # per-shard site digests, so the directory is rebuilt outright.
        moved = ShardCheckpoint.open(
            tmp_path / "ck", "payload-A", [[9, 1, 2], [3, 4], [5, 6, 7]]
        )
        assert not moved.stats["resumed"]
        assert moved.load(0) is None

    def test_checkpoint_misplaced_record_is_stale_not_served(self, tmp_path):
        # A record copied under the wrong index (a concurrent writer, a
        # botched restore): its embedded shard identity disagrees with
        # the slot, so it is unlinked as stale, never merged misaligned.
        import shutil

        journal = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        journal.store(0, _packed(1))
        shutil.copyfile(
            tmp_path / "ck" / "shard_00000.shard",
            tmp_path / "ck" / "shard_00001.shard",
        )
        resumed = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        assert resumed.load(1) is None
        assert resumed.stats["stale"] == 1
        assert not (tmp_path / "ck" / "shard_00001.shard").exists()

    def test_checkpoint_corrupt_record_quarantined(self, tmp_path):
        journal = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        journal.store(0, _packed(1))
        path = tmp_path / "ck" / "shard_00000.shard"
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF
        path.write_bytes(bytes(blob))
        resumed = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        assert resumed.load(0) is None
        assert resumed.stats["corrupt"] == 1
        assert list((tmp_path / "ck" / "quarantine").iterdir())

    def test_checkpoint_tmp_residue_swept_on_open(self, tmp_path):
        ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        (tmp_path / "ck" / ".shard_00000.shard.7.tmp").write_bytes(b"partial")
        resumed = ShardCheckpoint.open(tmp_path / "ck", "payload-A", _shards())
        assert resumed.stats["tmp_cleaned"] == 1
        assert not list((tmp_path / "ck").glob("*.tmp"))

    def test_checkpoint_unusable_directory_raises(self, tmp_path):
        blocker = tmp_path / "flat-file"
        blocker.write_bytes(b"not a directory")
        with pytest.raises(CheckpointError):
            ShardCheckpoint.open(blocker / "ck", "payload-A", _shards())

    def test_shard_digest_sensitive_to_ids_and_order(self):
        assert shard_digest([1, 2, 3]) == shard_digest([1, 2, 3])
        assert shard_digest([1, 2, 3]) != shard_digest([3, 2, 1])
        assert shard_digest([1, 2]) != shard_digest([1, 2, 3])


# --------------------------------------------------------------------------
# The engine integration: resume bit-identically, re-sweep only the rest.
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def s953_engine():
    circuit = generate_iscas("s953")
    return EPPEngine(circuit)


def _sharded(engine, checkpoint=None):
    return ShardedEPPEngine(
        engine.compiled, engine._sp, jobs=2, min_process_work=0,
        checkpoint=checkpoint,
    )


class TestEngineCheckpointResume:
    def test_checkpoint_resume_bit_identical_no_pool(self, tmp_path, s953_engine):
        engine = s953_engine
        ids = [engine.compiled.index[s] for s in engine.default_sites()]
        reference = engine.vector_backend().pack_sites(ids)

        cold = _sharded(engine, tmp_path / "ck")
        cold_packed = cold.pack_sites(ids)
        assert cold.stats["checkpointed_shards"] > 0
        assert cold.stats["checkpoint_shards"] == 0
        cold.close()
        assert all(np.array_equal(a, b) for a, b in zip(reference, cold_packed))

        warm = _sharded(engine, tmp_path / "ck")
        warm_packed = warm.pack_sites(ids)
        # Every shard came off disk; the worker pool never spun up.
        assert warm.stats["checkpoint_shards"] == cold.stats["checkpointed_shards"]
        assert warm.stats["checkpointed_shards"] == 0
        assert not warm.pool_started
        warm.close()
        assert all(np.array_equal(a, b) for a, b in zip(reference, warm_packed))

    def test_checkpoint_partial_resume_resweeps_only_missing(
        self, tmp_path, s953_engine
    ):
        engine = s953_engine
        ids = [engine.compiled.index[s] for s in engine.default_sites()]
        reference = engine.vector_backend().pack_sites(ids)
        cold = _sharded(engine, tmp_path / "ck")
        cold.pack_sites(ids)
        n_shards = cold.stats["checkpointed_shards"]
        cold.close()
        # Corrupt one journaled shard: resume must quarantine it, re-sweep
        # exactly that shard, and still merge bit-identically.
        victim = tmp_path / "ck" / "shard_00000.shard"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        resumed = _sharded(engine, tmp_path / "ck")
        packed = resumed.pack_sites(ids)
        assert resumed.stats["checkpoint_shards"] == n_shards - 1
        assert resumed.stats["checkpointed_shards"] == 1
        resumed.close()
        assert all(np.array_equal(a, b) for a, b in zip(reference, packed))
        assert list((tmp_path / "ck" / "quarantine").iterdir())

    def test_checkpoint_knob_reaches_analyze(self, tmp_path):
        # The public path: EPPEngine.analyze(checkpoint=...) threads the
        # directory into the sharded backend, and journaling must not
        # perturb the sweep — checkpointed, resumed and clean sharded
        # runs all agree exactly.
        circuit = generate_iscas("s953")
        sites = EPPEngine(circuit).default_sites()[:40]

        def sharded_analyze(engine, checkpoint=None):
            backend = engine.sharded_backend(jobs=2, checkpoint=checkpoint)
            backend.min_process_work = 0
            results = engine.analyze(
                sites=sites, backend="sharded", jobs=2, checkpoint=checkpoint,
            )
            return backend, results

        clean_backend, clean = sharded_analyze(EPPEngine(circuit))
        clean_backend.close()
        cold_backend, cold = sharded_analyze(EPPEngine(circuit), tmp_path / "ck")
        assert cold_backend.checkpoint == str(tmp_path / "ck")
        assert cold_backend.stats["checkpointed_shards"] > 0
        cold_backend.close()
        warm_backend, warm = sharded_analyze(EPPEngine(circuit), tmp_path / "ck")
        assert warm_backend.stats["checkpoint_shards"] > 0
        assert not warm_backend.pool_started
        warm_backend.close()
        for site in sites:
            assert clean[site].p_sensitized == cold[site].p_sensitized
            assert clean[site].p_sensitized == warm[site].p_sensitized


# --------------------------------------------------------------------------
# The kill-9 restart pin (nightly): SIGKILL mid-sweep, resume, identical.
# --------------------------------------------------------------------------

_CRASH_SCRIPT = """
import sys
from repro.core.epp import EPPEngine
from repro.core.epp_shard import ShardedEPPEngine
from repro.netlist.generate import generate_iscas
from repro.testing.faults import KillAfterShards

engine = EPPEngine(generate_iscas("s953"))
ids = [engine.compiled.index[s] for s in engine.default_sites()]
backend = ShardedEPPEngine(
    engine.compiled, engine._sp, jobs=2, min_process_work=0,
    checkpoint=sys.argv[1],
)
# SIGKILL this process the instant the 3rd shard record is durable on
# disk -- after the journal write, before the merge.  No cleanup runs.
backend._checkpoint_on_store = KillAfterShards(3)
backend.pack_sites(ids)
raise SystemExit("unreachable: the kill hook must have fired")
"""


def _pids_running(marker: str) -> set[int]:
    """Pids (other than ours) whose cmdline contains ``marker``."""
    found = set()
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read()
        except OSError:
            continue
        if marker.encode() in cmdline:
            found.add(int(entry))
    return found


@pytest.mark.slow
class TestKillNineRestart:
    def test_checkpoint_kill9_restart_recovers_bit_identical(self, tmp_path):
        ck = tmp_path / "ck"
        before = repro_segments()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = (
            os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        )
        # DEVNULL, not pipes: the SIGKILLed host's forked pool workers
        # inherit any pipe and would keep it open past the host's death.
        proc = subprocess.Popen(
            [sys.executable, "-c", _CRASH_SCRIPT, str(ck)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            returncode = proc.wait(timeout=300)
        finally:
            if proc.poll() is None:  # pragma: no cover - hung host
                proc.kill()
                proc.wait()
        # The host died by SIGKILL at the seeded point, not cleanly.
        assert returncode == -signal.SIGKILL
        journaled = list(ck.glob("shard_*.shard"))
        assert len(journaled) >= 3  # the journal outlived the process

        # kill -9 reparents the host's pool workers to init, where they
        # block forever on their now-ownerless call queue — exactly the
        # abandoned-process shape a real power-cut leaves on a shared
        # host.  Reap them (their cmdline carries this test's unique
        # checkpoint path) so the segment sweep sees their pids dead.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            orphans = _pids_running(str(ck))
            if not orphans:
                break
            for pid in orphans:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
            time.sleep(0.25)
        assert not _pids_running(str(ck))

        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine.compiled.index[s] for s in engine.default_sites()]
        clean = engine.vector_backend().pack_sites(ids)
        resumed = ShardedEPPEngine(
            engine.compiled, engine._sp, jobs=2, min_process_work=0,
            checkpoint=ck,
        )
        packed = resumed.pack_sites(ids)
        # >= 1 shard served from the journal (here: every journaled one).
        assert resumed.stats["checkpoint_shards"] >= 3
        resumed.close()
        assert all(np.array_equal(a, b) for a, b in zip(clean, packed))
        # No crash residue: the resume reaped the dead host's segments
        # and the journal directory holds no temp files.
        assert repro_segments() - before == set()
        assert not list(ck.rglob("*.tmp"))
