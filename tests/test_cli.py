"""CLI commands (exercised in-process through cli.main)."""

import pytest

from repro.cli import main, resolve_circuit
from repro.errors import ReproError
from repro.netlist.bench import write_bench
from repro.netlist.library import c17


class TestResolve:
    def test_library_name(self):
        assert resolve_circuit("c17").name == "c17"

    def test_profile_name(self):
        circuit = resolve_circuit("s953")
        assert len(circuit.gates) == 424

    def test_bench_file(self, tmp_path):
        path = tmp_path / "mine.bench"
        write_bench(c17(), path)
        assert resolve_circuit(str(path)).name == "mine"

    def test_unresolvable(self):
        with pytest.raises(ReproError, match="cannot resolve"):
            resolve_circuit("definitely_not_a_circuit")


class TestCommands:
    def test_figure1_succeeds(self, capsys):
        assert main(["figure1"]) == 0
        assert "[MATCH]" in capsys.readouterr().out

    def test_table1_succeeds(self, capsys):
        assert main(["table1", "--steps", "2"]) == 0
        assert "ALL RULES MATCH" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "s38417" in out

    def test_stats(self, capsys):
        assert main(["stats", "c17"]) == 0
        assert "NAND=6" in capsys.readouterr().out

    def test_analyze_with_sample(self, capsys):
        assert main(["analyze", "s27", "--top", "3", "--sample", "5"]) == 0
        assert "FIT" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["scalar", "vector", "sharded", "auto"])
    def test_analyze_backend_flag(self, backend, capsys):
        assert main(["analyze", "s27", "--top", "2", "--backend", backend]) == 0
        assert "FIT" in capsys.readouterr().out

    def test_analyze_backend_flag_with_batch_size(self, capsys):
        assert main(
            ["analyze", "s27", "--backend", "vector", "--batch-size", "4"]
        ) == 0
        assert "FIT" in capsys.readouterr().out

    def test_analyze_jobs_flag_implies_sharded(self, capsys):
        # s27 sits far below the crossover, so this exercises the routing
        # (jobs => sharded backend) without paying process spin-up.
        assert main(["analyze", "s27", "--top", "2", "--jobs", "2"]) == 0
        assert "FIT" in capsys.readouterr().out

    def test_analyze_jobs_with_scalar_backend_fails_cleanly(self, capsys):
        code = main(["analyze", "s27", "--backend", "scalar", "--jobs", "2"])
        assert code == 1
        assert "jobs=" in capsys.readouterr().err

    def test_analyze_multi_cycle(self, capsys):
        assert main(["analyze", "s27", "--multi-cycle", "2"]) == 0
        assert "multi-cycle observability" in capsys.readouterr().out

    def test_analyze_csv_export(self, tmp_path, capsys):
        out = tmp_path / "report.csv"
        assert main(["analyze", "s27", "--csv", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("node,")
        assert "G9" in text

    def test_analyze_verilog_file(self, tmp_path, capsys):
        from repro.netlist.verilog import write_verilog

        path = tmp_path / "mine.v"
        write_verilog(c17(), path)
        assert main(["analyze", str(path), "--top", "3"]) == 0
        assert "FIT" in capsys.readouterr().out

    def test_ablations_quick(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "ablation: polarity" in out
        assert "ablation: cop" in out

    def test_analyze_unknown_circuit_fails_cleanly(self, capsys):
        assert main(["analyze", "no_such_thing"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "s953.bench"
        assert main(["generate", "s953", "-o", str(out)]) == 0
        assert out.exists()
        assert resolve_circuit(str(out)).gates  # parses back

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "s27"]) == 0
        assert "INPUT(" in capsys.readouterr().out

    def test_generate_unknown_profile(self, capsys):
        assert main(["generate", "b19"]) == 1

    def test_table2_tiny(self, capsys, tmp_path):
        csv_path = tmp_path / "t2.csv"
        code = main(
            ["table2", "--mode", "quick", "--circuits", "s27", "--csv", str(csv_path)]
        )
        assert code == 0
        assert csv_path.exists()
        assert "paper avg" in capsys.readouterr().out

    def test_table2_sharded_backend_flag(self, capsys):
        code = main(
            ["table2", "--mode", "quick", "--circuits", "s27",
             "--backend", "sharded", "--jobs", "2"]
        )
        assert code == 0
        assert "paper avg" in capsys.readouterr().out

    def test_table2_jobs_without_sharded_fails_cleanly(self, capsys):
        code = main(
            ["table2", "--mode", "quick", "--circuits", "s27", "--jobs", "2"]
        )
        assert code == 1
        assert "jobs" in capsys.readouterr().err

    def test_table2_circuit_jobs_flag(self, capsys):
        """--circuit-jobs reaches the roster pool (a single-circuit quick
        run stays serial by construction, so this is a plumbing check)."""
        code = main(
            ["table2", "--mode", "quick", "--circuits", "s27",
             "--circuit-jobs", "2"]
        )
        assert code == 0
        assert "paper avg" in capsys.readouterr().out

    def test_table2_circuit_jobs_with_sharded_fails_cleanly(self, capsys):
        code = main(
            ["table2", "--mode", "quick", "--circuits", "s27",
             "--backend", "sharded", "--circuit-jobs", "2"]
        )
        assert code == 1
        assert "circuit_jobs" in capsys.readouterr().err


class TestAnalyzeDelta:
    def test_single_edit_with_verify(self, capsys):
        code = main(["analyze-delta", "c17", "--replace", "N10:nor",
                     "--verify", "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "re-swept" in out
        assert "incremental == full re-analysis: True" in out

    def test_mixed_edits_sharded(self, capsys):
        code = main(["analyze-delta", "s27", "--tmr", "G10",
                     "--set-sp", "G0=0.3", "--jobs", "2", "--verify"])
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_harden_edit_resweeps_nothing(self, capsys):
        code = main(["analyze-delta", "c17", "--harden", "N10:8"])
        assert code == 0
        assert "re-swept 0 of" in capsys.readouterr().out

    def test_no_edits_fails_cleanly(self, capsys):
        code = main(["analyze-delta", "c17"])
        assert code == 1
        assert "no edits" in capsys.readouterr().err

    def test_bad_edit_spec_fails_cleanly(self, capsys):
        code = main(["analyze-delta", "c17", "--set-sp", "N10"])
        assert code == 1
        assert "set-sp" in capsys.readouterr().err.lower()

    def test_unknown_node_fails_cleanly(self, capsys):
        code = main(["analyze-delta", "c17", "--replace", "ghost:nor"])
        assert code == 1
        assert capsys.readouterr().err


class TestHardenCommand:
    def test_upsize_plan(self, capsys):
        code = main(["harden", "s27", "--budget", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hardening plan for s27" in out
        assert "accepted" in out

    def test_tmr_action(self, capsys):
        code = main(["harden", "s27", "--budget", "12", "--action", "tmr",
                     "--max-steps", "2"])
        assert code == 0
        assert "hardening plan" in capsys.readouterr().out

    def test_bad_budget_fails_cleanly(self, capsys):
        code = main(["harden", "s27", "--budget", "0"])
        assert code == 1
        assert "budget" in capsys.readouterr().err
