"""The content-addressed artifact store behind the analysis service (PR 8).

The store's contract is "verified bytes or nothing": every load
re-checks the payload checksum, every token mismatch misses instead of
serving pre-edit results, and the byte budget is enforced by LRU
eviction.  Corruption can cost a recompute, never a wrong answer.
"""

from __future__ import annotations

import threading

import pytest

from repro.server.artifacts import ArtifactStore, digest_of


class TestDigestOf:
    def test_deterministic(self):
        parts = ("analyze", "c17", [("jobs", 2)], None, True, 10)
        assert digest_of(*parts) == digest_of(*parts)

    def test_order_and_boundaries_matter(self):
        assert digest_of("ab", "c") != digest_of("a", "bc")
        assert digest_of("a", "b") != digest_of("b", "a")

    def test_bytes_and_values_distinct(self):
        assert digest_of(b"ab") != digest_of("ab")
        assert digest_of(1.0) != digest_of(1)
        assert digest_of(None) != digest_of("None2")

    def test_float_exactness(self):
        # repr round-trips floats exactly; nearby floats must not collide.
        a, b = 0.1 + 0.2, 0.3
        assert a != b
        assert digest_of(a) != digest_of(b)


class TestArtifactStore:
    def test_round_trip(self):
        store = ArtifactStore()
        obj = {"p": [0.5, 0.25], "sweep": {"sites": 2}}
        assert store.put("result", "k", obj)
        assert store.get("result", "k") == obj
        stats = store.stats()
        assert stats["hits"] == 1 and stats["entries"] == 1

    def test_miss(self):
        store = ArtifactStore()
        assert store.get("result", "nope") is None
        assert store.stats()["misses"] == 1

    def test_kinds_do_not_alias(self):
        store = ArtifactStore()
        store.put("circuit", "k", "a-circuit")
        store.put("result", "k", "a-result")
        assert store.get("circuit", "k") == "a-circuit"
        assert store.get("result", "k") == "a-result"

    def test_token_staleness_drops_entry(self):
        store = ArtifactStore()
        store.put("result", "k", {"rev": 1}, token=1)
        assert store.get("result", "k", token=1) == {"rev": 1}
        # The circuit mutated since: same key, new token -> never served.
        assert store.get("result", "k", token=2) is None
        assert store.stats()["stale"] == 1
        # The stale entry is gone outright, not just hidden.
        assert store.get("result", "k", token=1) is None

    def test_corruption_quarantines_and_put_rehabilitates(self):
        store = ArtifactStore()
        store.put("result", "k", {"rev": 1})
        assert store.corrupt("result", "k")
        assert store.get("result", "k") is None
        assert ("result", "k") in store.quarantined
        assert store.stats()["corrupt"] == 1
        # Recompute-and-store clears the quarantine; the fresh entry loads.
        store.put("result", "k", {"rev": 1})
        assert ("result", "k") not in store.quarantined
        assert store.get("result", "k") == {"rev": 1}

    def test_corrupt_missing_entry_is_false(self):
        assert not ArtifactStore().corrupt("result", "nope")

    def test_lru_eviction_by_bytes(self):
        payload = b"x" * 400
        store = ArtifactStore(max_bytes=1000)
        store.put("blob", "a", payload)
        store.put("blob", "b", payload)
        assert store.get("blob", "a") is not None  # 'a' is now most recent
        store.put("blob", "c", payload)  # evicts LRU 'b', not 'a'
        assert store.get("blob", "b") is None
        assert store.get("blob", "a") is not None
        assert store.get("blob", "c") is not None
        assert store.stats()["evictions"] == 1
        assert store.stats()["bytes"] <= 1000

    def test_oversize_rejected(self):
        store = ArtifactStore(max_bytes=64)
        assert not store.put("blob", "big", b"x" * 1024)
        assert store.get("blob", "big") is None
        assert store.stats()["oversize"] == 1

    def test_replacing_entry_does_not_leak_bytes(self):
        store = ArtifactStore(max_bytes=10_000)
        for _ in range(20):
            store.put("blob", "k", b"y" * 400)
        assert store.stats()["entries"] == 1
        assert store.stats()["bytes"] < 1000

    def test_clear(self):
        store = ArtifactStore()
        store.put("blob", "k", b"x")
        store.clear()
        assert store.stats()["entries"] == 0
        assert store.stats()["bytes"] == 0
        assert store.get("blob", "k") is None

    def test_thread_safety_under_churn(self):
        store = ArtifactStore(max_bytes=50_000)
        errors = []

        def worker(tag):
            try:
                for i in range(200):
                    key = f"{tag}-{i % 7}"
                    store.put("blob", key, bytes(200))
                    loaded = store.get("blob", key)
                    assert loaded is None or loaded == bytes(200)
                    if i % 50 == 0:
                        store.corrupt("blob", key)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = store.stats()
        assert stats["bytes"] <= store.max_bytes
        # Invariant: tracked byte count matches the surviving entries.
        assert stats["bytes"] == sum(
            e.nbytes for e in store._entries.values()
        )


@pytest.mark.parametrize("budget", [0, 1])
def test_tiny_budget_stores_nothing(budget):
    store = ArtifactStore(max_bytes=budget)
    assert not store.put("blob", "k", b"payload")
    assert store.stats()["entries"] == 0
