"""The content-addressed artifact store behind the analysis service (PR 8).

The store's contract is "verified bytes or nothing": every load
re-checks the payload checksum, every token mismatch misses instead of
serving pre-edit results, and the byte budget is enforced by LRU
eviction.  Corruption can cost a recompute, never a wrong answer.
"""

from __future__ import annotations

import threading

import pytest

from repro.server.artifacts import ArtifactStore, digest_of


class TestDigestOf:
    def test_deterministic(self):
        parts = ("analyze", "c17", [("jobs", 2)], None, True, 10)
        assert digest_of(*parts) == digest_of(*parts)

    def test_order_and_boundaries_matter(self):
        assert digest_of("ab", "c") != digest_of("a", "bc")
        assert digest_of("a", "b") != digest_of("b", "a")

    def test_bytes_and_values_distinct(self):
        assert digest_of(b"ab") != digest_of("ab")
        assert digest_of(1.0) != digest_of(1)
        assert digest_of(None) != digest_of("None2")

    def test_float_exactness(self):
        # repr round-trips floats exactly; nearby floats must not collide.
        a, b = 0.1 + 0.2, 0.3
        assert a != b
        assert digest_of(a) != digest_of(b)


class TestArtifactStore:
    def test_round_trip(self):
        store = ArtifactStore()
        obj = {"p": [0.5, 0.25], "sweep": {"sites": 2}}
        assert store.put("result", "k", obj)
        assert store.get("result", "k") == obj
        stats = store.stats()
        assert stats["hits"] == 1 and stats["entries"] == 1

    def test_miss(self):
        store = ArtifactStore()
        assert store.get("result", "nope") is None
        assert store.stats()["misses"] == 1

    def test_kinds_do_not_alias(self):
        store = ArtifactStore()
        store.put("circuit", "k", "a-circuit")
        store.put("result", "k", "a-result")
        assert store.get("circuit", "k") == "a-circuit"
        assert store.get("result", "k") == "a-result"

    def test_token_staleness_drops_entry(self):
        store = ArtifactStore()
        store.put("result", "k", {"rev": 1}, token=1)
        assert store.get("result", "k", token=1) == {"rev": 1}
        # The circuit mutated since: same key, new token -> never served.
        assert store.get("result", "k", token=2) is None
        assert store.stats()["stale"] == 1
        # The stale entry is gone outright, not just hidden.
        assert store.get("result", "k", token=1) is None

    def test_corruption_quarantines_and_put_rehabilitates(self):
        store = ArtifactStore()
        store.put("result", "k", {"rev": 1})
        assert store.corrupt("result", "k")
        assert store.get("result", "k") is None
        assert ("result", "k") in store.quarantined
        assert store.stats()["corrupt"] == 1
        # Recompute-and-store clears the quarantine; the fresh entry loads.
        store.put("result", "k", {"rev": 1})
        assert ("result", "k") not in store.quarantined
        assert store.get("result", "k") == {"rev": 1}

    def test_corrupt_missing_entry_is_false(self):
        assert not ArtifactStore().corrupt("result", "nope")

    def test_lru_eviction_by_bytes(self):
        payload = b"x" * 400
        store = ArtifactStore(max_bytes=1000)
        store.put("blob", "a", payload)
        store.put("blob", "b", payload)
        assert store.get("blob", "a") is not None  # 'a' is now most recent
        store.put("blob", "c", payload)  # evicts LRU 'b', not 'a'
        assert store.get("blob", "b") is None
        assert store.get("blob", "a") is not None
        assert store.get("blob", "c") is not None
        assert store.stats()["evictions"] == 1
        assert store.stats()["bytes"] <= 1000

    def test_oversize_rejected(self):
        store = ArtifactStore(max_bytes=64)
        assert not store.put("blob", "big", b"x" * 1024)
        assert store.get("blob", "big") is None
        assert store.stats()["oversize"] == 1

    def test_replacing_entry_does_not_leak_bytes(self):
        store = ArtifactStore(max_bytes=10_000)
        for _ in range(20):
            store.put("blob", "k", b"y" * 400)
        assert store.stats()["entries"] == 1
        assert store.stats()["bytes"] < 1000

    def test_clear(self):
        store = ArtifactStore()
        store.put("blob", "k", b"x")
        store.clear()
        assert store.stats()["entries"] == 0
        assert store.stats()["bytes"] == 0
        assert store.get("blob", "k") is None

    def test_thread_safety_under_churn(self):
        store = ArtifactStore(max_bytes=50_000)
        errors = []

        def worker(tag):
            try:
                for i in range(200):
                    key = f"{tag}-{i % 7}"
                    store.put("blob", key, bytes(200))
                    loaded = store.get("blob", key)
                    assert loaded is None or loaded == bytes(200)
                    if i % 50 == 0:
                        store.corrupt("blob", key)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = store.stats()
        assert stats["bytes"] <= store.max_bytes
        # Invariant: tracked byte count matches the surviving entries.
        assert stats["bytes"] == sum(
            e.nbytes for e in store._entries.values()
        )


@pytest.mark.parametrize("budget", [0, 1])
def test_tiny_budget_stores_nothing(budget):
    store = ArtifactStore(max_bytes=budget)
    assert not store.put("blob", "k", b"payload")
    assert store.stats()["entries"] == 0


# --------------------------------------------------------------------------
# The disk tier (PR 9): durable, checksummed, shared between processes.
# --------------------------------------------------------------------------


class TestDiskTierDurability:
    def test_durable_restart_rehydrates_index(self, tmp_path):
        first = ArtifactStore(store_dir=tmp_path / "store")
        first.put("result", "k", {"p": [0.5]})
        # A brand-new store over the same directory answers warm: the
        # startup scan rebuilt the index, the read re-verified the
        # checksum off disk.
        second = ArtifactStore(store_dir=tmp_path / "store")
        assert second.stats()["disk_entries"] == 1
        assert second.get("result", "k") == {"p": [0.5]}
        assert second.stats()["disk_hits"] == 1
        # Promotion: the second read is a pure memory hit.
        assert second.get("result", "k") == {"p": [0.5]}
        assert second.stats()["disk_hits"] == 1
        assert second.stats()["hits"] == 1

    def test_durable_memory_eviction_demotes_not_destroys(self, tmp_path):
        store = ArtifactStore(max_bytes=600, store_dir=tmp_path / "store")
        store.put("blob", "a", b"x" * 400)
        store.put("blob", "b", b"y" * 400)  # evicts 'a' from memory
        assert store.stats()["evictions"] == 1
        # 'a' survives on disk and is served (and re-promoted) from there.
        assert store.get("blob", "a") == b"x" * 400
        assert store.stats()["disk_hits"] == 1

    def test_durable_corrupt_file_quarantined_and_recomputed(self, tmp_path):
        store_dir = tmp_path / "store"
        first = ArtifactStore(store_dir=store_dir)
        first.put("result", "k", {"rev": 1})
        path = store_dir / "result" / "k.art"
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF
        path.write_bytes(bytes(blob))
        second = ArtifactStore(store_dir=store_dir)
        assert second.get("result", "k") is None
        assert second.stats()["corrupt"] == 1
        assert ("result", "k") in second.quarantined
        assert not path.exists()
        quarantined = list((store_dir / "quarantine").iterdir())
        assert len(quarantined) == 1  # moved aside for forensics, not gone
        # Recompute-and-store rehabilitates both tiers.
        second.put("result", "k", {"rev": 1})
        third = ArtifactStore(store_dir=store_dir)
        assert third.get("result", "k") == {"rev": 1}

    def test_durable_token_staleness_purges_disk(self, tmp_path):
        store_dir = tmp_path / "store"
        first = ArtifactStore(store_dir=store_dir)
        first.put("result", "k", {"rev": 1}, token=1)
        second = ArtifactStore(store_dir=store_dir)
        assert second.get("result", "k", token=2) is None
        assert second.stats()["stale"] == 1
        assert not (store_dir / "result" / "k.art").exists()
        # Gone for good, not just hidden from the new token.
        assert second.get("result", "k", token=1) is None

    def test_durable_disk_lru_eviction_by_bytes(self, tmp_path):
        store = ArtifactStore(
            max_bytes=64 * 1024, store_dir=tmp_path / "store", disk_bytes=1200
        )
        store.put("blob", "a", b"x" * 400)
        store.put("blob", "b", b"y" * 400)
        store.put("blob", "c", b"z" * 400)  # header bytes push 'a' out
        stats = store.stats()
        assert stats["disk_evictions"] >= 1
        assert stats["disk_bytes"] <= 1200
        assert not (tmp_path / "store" / "blob" / "a.art").exists()

    def test_durable_restart_sweeps_tmp_residue(self, tmp_path):
        store_dir = tmp_path / "store"
        ArtifactStore(store_dir=store_dir).put("result", "k", b"payload")
        # A crash mid-write leaves a temp file next to the records.
        (store_dir / "result" / ".k.art.123.tmp").write_bytes(b"partial")
        store = ArtifactStore(store_dir=store_dir)
        assert store.stats()["tmp_cleaned"] == 1
        assert list((store_dir / "result").glob("*.tmp")) == []
        assert store.get("result", "k") == b"payload"

    def test_durable_cross_store_discovery_without_restart(self, tmp_path):
        # Two live stores over one directory (two server processes): a
        # put through one is visible to the other without any restart,
        # because disk gets always probe the filesystem.
        store_dir = tmp_path / "store"
        writer = ArtifactStore(store_dir=store_dir)
        reader = ArtifactStore(store_dir=store_dir)
        assert reader.get("result", "k") is None
        writer.put("result", "k", {"rev": 7})
        assert reader.get("result", "k") == {"rev": 7}

    def test_durable_memory_only_store_unchanged(self):
        store = ArtifactStore()
        store.put("blob", "k", b"x")
        stats = store.stats()
        assert stats["store_dir"] is None
        assert stats["disk_entries"] == 0 and stats["disk_hits"] == 0

    def test_durable_clear_disk_unlinks_files(self, tmp_path):
        store_dir = tmp_path / "store"
        store = ArtifactStore(store_dir=store_dir)
        store.put("result", "k", b"payload")
        store.clear(disk=True)
        assert store.get("result", "k") is None
        assert not (store_dir / "result" / "k.art").exists()


def _hammer_store(store_dir, tag: str, rounds: int, error_queue) -> None:
    """Cross-process churn worker: self-validating payloads, shared dir."""
    try:
        store = ArtifactStore(max_bytes=256 * 1024, store_dir=store_dir)
        for i in range(rounds):
            key = f"k{i % 5}"
            expected = (key * 50).encode()
            store.put("blob", key, expected)
            loaded = store.get("blob", key)
            # Torn or interleaved writes must surface as a miss (checksum
            # reject), never as wrong bytes.
            if loaded is not None and loaded != expected:
                raise AssertionError(f"{tag}: torn read for {key}")
    except BaseException as exc:  # pragma: no cover - failure detail
        error_queue.put(f"{tag}: {exc!r}")


class TestDiskTierCrossProcess:
    def test_durable_two_processes_share_one_store_dir(self, tmp_path):
        # The two-servers-one---store-dir shape: concurrent writers and
        # readers over the same keys.  Last-writer-wins is acceptable;
        # serving a payload that fails its checksum is not.
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        errors = ctx.Queue()
        procs = [
            ctx.Process(
                target=_hammer_store,
                args=(str(tmp_path / "store"), f"p{n}", 200, errors),
            )
            for n in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert errors.empty()
        # The survivors still verify from a fresh store.
        store = ArtifactStore(store_dir=tmp_path / "store")
        for i in range(5):
            key = f"k{i}"
            loaded = store.get("blob", key)
            assert loaded is None or loaded == (key * 50).encode()
