"""Pattern sources: packing, exhaustive enumeration, weighted randomness."""

import pytest

from repro.errors import SimulationError
from repro.sim.vectors import (
    RandomVectorSource,
    exhaustive_words,
    pack_patterns,
    popcount,
    unpack_word,
)


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        patterns = [{"a": 1, "b": 0}, {"a": 0, "b": 0}, {"a": 1, "b": 1}]
        words = pack_patterns(patterns, ["a", "b"])
        assert unpack_word(words["a"], 3) == [1, 0, 1]
        assert unpack_word(words["b"], 3) == [0, 0, 1]

    def test_pack_rejects_non_binary(self):
        with pytest.raises(SimulationError):
            pack_patterns([{"a": 2}], ["a"])

    def test_popcount(self):
        assert popcount(0b101101) == 4


class TestExhaustive:
    def test_columns_follow_truth_table_convention(self):
        words, width = exhaustive_words(["x0", "x1"])
        assert width == 4
        # pattern p assigns bit (p >> k) & 1 to signal k
        assert unpack_word(words["x0"], 4) == [0, 1, 0, 1]
        assert unpack_word(words["x1"], 4) == [0, 0, 1, 1]

    def test_all_patterns_distinct(self):
        signals = ["a", "b", "c"]
        words, width = exhaustive_words(signals)
        seen = set()
        for p in range(width):
            seen.add(tuple((words[s] >> p) & 1 for s in signals))
        assert len(seen) == 8

    def test_limit_guard(self):
        with pytest.raises(SimulationError, match="not tractable"):
            exhaustive_words([f"x{i}" for i in range(25)])


class TestRandomSource:
    def test_deterministic_stream(self):
        a = RandomVectorSource(["x", "y"], seed=42).next_words(128)
        b = RandomVectorSource(["x", "y"], seed=42).next_words(128)
        assert a == b

    def test_different_seeds_differ(self):
        a = RandomVectorSource(["x"], seed=1).next_words(256)
        b = RandomVectorSource(["x"], seed=2).next_words(256)
        assert a != b

    def test_external_rng_instance(self):
        """An explicitly passed generator is drawn from directly — two
        sources sharing one rng continue a single stream, and a source
        given a fresh rng in a known state is fully reproducible."""
        import random

        shared = random.Random(5)
        first = RandomVectorSource(["x"], rng=shared).next_words(128)
        second = RandomVectorSource(["x"], rng=shared).next_words(128)
        assert first != second  # one continuing stream, not a reset
        replay = random.Random(5)
        assert RandomVectorSource(["x"], rng=replay).next_words(128) == first

    def test_weighted_extremes(self):
        source = RandomVectorSource(["lo", "hi"], seed=0, weights={"lo": 0.0, "hi": 1.0})
        words = source.next_words(64)
        assert words["lo"] == 0
        assert words["hi"] == (1 << 64) - 1

    def test_weighted_statistics(self):
        source = RandomVectorSource(["x"], seed=7, weights={"x": 0.2})
        total = sum(source.next_words(1024)["x"].bit_count() for _ in range(8))
        fraction = total / (8 * 1024)
        assert 0.15 < fraction < 0.25

    def test_invalid_weight_rejected(self):
        with pytest.raises(SimulationError):
            RandomVectorSource(["x"], weights={"x": 1.5})

    def test_invalid_width_rejected(self):
        with pytest.raises(SimulationError):
            RandomVectorSource(["x"]).next_words(0)

    def test_stream_yields_fresh_words(self):
        source = RandomVectorSource(["x"], seed=3)
        stream = source.stream(64)
        first = next(stream)["x"]
        second = next(stream)["x"]
        assert first != second
