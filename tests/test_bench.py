""".bench format reader/writer."""

import pytest

from repro.errors import ParseError
from repro.netlist.bench import parse_bench, parse_bench_file, write_bench
from repro.netlist.gate_types import GateType
from repro.netlist.library import (
    C17_BENCH,
    S27_BENCH,
    c17,
    counter,
    figure1_circuit,
    mux_tree,
    ripple_carry_adder,
    s27,
)


class TestParse:
    def test_s27_shape(self):
        circuit = parse_bench(S27_BENCH, name="s27")
        assert circuit.inputs == ["G0", "G1", "G2", "G3"]
        assert circuit.outputs == ["G17"]
        assert circuit.flip_flops == ["G5", "G6", "G7"]
        assert len(circuit.gates) == 10

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nINPUT(a)\n  # indented comment\nOUTPUT(b)\nb = NOT(a)  # trailing\n"
        circuit = parse_bench(text)
        assert circuit.node("b").gate_type is GateType.NOT

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(b)\nb = nand(a, a)\n"
        circuit = parse_bench(text)
        assert circuit.node("b").gate_type is GateType.NAND

    def test_aliases(self):
        text = (
            "INPUT(a)\nOUTPUT(y)\n"
            "b = BUFF(a)\nc = INV(b)\ng = GND()\nv = VCC()\n"
            "y = OR(c, g, v)\n"
        )
        circuit = parse_bench(text)
        assert circuit.node("b").gate_type is GateType.BUF
        assert circuit.node("c").gate_type is GateType.NOT
        assert circuit.node("g").gate_type is GateType.CONST0
        assert circuit.node("v").gate_type is GateType.CONST1

    def test_output_before_definition(self):
        text = "OUTPUT(y)\nINPUT(a)\ny = NOT(a)\n"
        assert parse_bench(text).outputs == ["y"]

    def test_unknown_gate_type_with_line_number(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_bench("INPUT(a)\nb = FROB(a)\n")

    def test_duplicate_input_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_bench("INPUT(a)\nINPUT(a)\n")

    def test_undefined_output_rejected(self):
        with pytest.raises(ParseError, match="undefined"):
            parse_bench("INPUT(a)\nOUTPUT(ghost)\nb = NOT(a)\n")

    def test_dff_arity_enforced(self):
        with pytest.raises(ParseError, match="DFF"):
            parse_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\nOUTPUT(q)\n")

    def test_garbage_statement_rejected(self):
        with pytest.raises(ParseError, match="unrecognized"):
            parse_bench("INPUT(a)\nwibble wobble\n")

    def test_unknown_driver_rejected_at_parse_time(self):
        with pytest.raises(ParseError, match="ghost"):
            parse_bench("INPUT(a)\nOUTPUT(b)\nb = AND(a, ghost)\n")

    def test_duplicate_definition_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_bench("INPUT(a)\nb = NOT(a)\nb = BUF(a)\nOUTPUT(b)\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [s27, c17, figure1_circuit, lambda: ripple_carry_adder(4),
         lambda: counter(3), lambda: mux_tree(2)],
    )
    def test_write_then_parse_preserves_structure(self, factory):
        original = factory()
        reparsed = parse_bench(write_bench(original), name=original.name)
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert reparsed.flip_flops == original.flip_flops
        assert len(reparsed) == len(original)
        for node in original:
            copy = reparsed.node(node.name)
            assert copy.gate_type is node.gate_type
            assert copy.fanin == node.fanin

    def test_roundtrip_preserves_behaviour(self):
        original = c17()
        reparsed = parse_bench(write_bench(original))
        for pattern in range(32):
            assignment = {
                name: (pattern >> k) & 1 for k, name in enumerate(original.inputs)
            }
            assert original.evaluate(assignment) == reparsed.evaluate(assignment)


class TestFileIO:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "c17.bench"
        write_bench(c17(), path)
        circuit = parse_bench_file(path)
        assert circuit.name == "c17"
        assert len(circuit.gates) == 6

    def test_default_name_is_file_stem(self, tmp_path):
        path = tmp_path / "mydesign.bench"
        write_bench(c17(), path)
        assert parse_bench_file(path).name == "mydesign"
