"""Circuit statistics and reconvergence detection."""

from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.library import c17, figure1_circuit, parity_tree, s27
from repro.netlist.stats import circuit_stats, count_reconvergent_stems


class TestCounts:
    def test_s27(self):
        stats = circuit_stats(s27())
        assert stats.n_inputs == 4
        assert stats.n_outputs == 1
        assert stats.n_flip_flops == 3
        assert stats.n_gates == 10
        assert stats.gate_histogram["NOR"] == 4

    def test_c17(self):
        stats = circuit_stats(c17())
        assert stats.n_gates == 6
        assert stats.gate_histogram == {"NAND": 6}
        assert stats.depth == 3
        assert stats.max_fanin == 2

    def test_format_mentions_name(self):
        assert "c17" in circuit_stats(c17()).format()


class TestReconvergence:
    def test_parity_tree_has_none(self):
        assert count_reconvergent_stems(parity_tree(8)) == 0

    def test_figure1_stem_at_error_site(self):
        # A fans out to E and D; the branches re-meet at H.
        assert count_reconvergent_stems(figure1_circuit()) >= 1

    def test_c17_is_reconvergent(self):
        # N11 feeds N16 and N19; both reach N23.
        assert count_reconvergent_stems(c17()) >= 1

    def test_handmade_diamond(self):
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("l", GateType.NOT, ["x"])
        circuit.add_gate("r", GateType.BUF, ["x"])
        circuit.add_gate("m", GateType.AND, ["l", "r"])
        circuit.mark_output("m")
        assert count_reconvergent_stems(circuit) == 1

    def test_fanout_without_reconvergence(self):
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("l", GateType.NOT, ["x"])
        circuit.add_gate("r", GateType.BUF, ["x"])
        circuit.mark_output("l")
        circuit.mark_output("r")
        assert count_reconvergent_stems(circuit) == 0

    def test_reconvergence_does_not_cross_dff(self):
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("l", GateType.NOT, ["x"])
        circuit.add_dff("q", "x")
        circuit.add_gate("m", GateType.AND, ["l", "q"])
        circuit.mark_output("m")
        assert count_reconvergent_stems(circuit) == 0

    def test_limit_caps_scan(self):
        stats = circuit_stats(c17(), reconvergence_limit=0)
        assert stats.n_reconvergent_stems == 0  # scan skipped
