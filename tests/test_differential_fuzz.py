"""Property-based differential fuzzing of the EPP backends.

Three oracles, fuzzed over generated circuits (:mod:`repro.netlist.generate`):

* **Backend agreement** — scalar vs vector vs sharded must agree to 1e-9 on
  every site of every circuit; sharding and vectorization reassociate
  floating-point work but must never change the semantics.
* **Exhaustive exactness on trees** — on fanout-free circuits the EPP
  algebra is *exact* (signals are independent and every site has a single
  path to a single sink), so the engine must match exhaustive logic
  simulation over all ``2^n`` input vectors to 1e-9, not approximately.
* **Bounded approximation under reconvergence** — on general random
  circuits EPP is a first-order approximation; the error against the
  exhaustive ground truth must stay inside the documented band (a broken
  rule or traversal typically shows errors of 0.3+ immediately).

The hypothesis properties shrink failures to minimal circuits; every
example is reconstructible from ``random_combinational``'s integer seed.
"""

import random

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.epp import EPPEngine
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import random_combinational

from tests.helpers import exhaustive_all_sites

TOL = 1e-9

#: Gate pool for random trees: every closed-form family plus the
#: truth-table-kernel cells (MUX/MAJ), single-input cells included.
_TREE_GATES = [
    GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
    GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF,
    GateType.MUX, GateType.MAJ,
]


def random_tree_circuit(seed: int, max_inputs: int = 12, n_gates: int = 12) -> Circuit:
    """A random *fanout-free* circuit (every signal consumed at most once).

    Fanout-freedom is what makes the EPP algebra exact: all fanins of every
    gate are mutually independent and each error site has exactly one path
    to exactly one sink, so there is no reconvergence for the four-valued
    abstraction to approximate.  Inputs are created on demand up to
    ``max_inputs`` (≤ 12 keeps exhaustive enumeration at ≤ 4096 vectors).
    """
    rng = random.Random(seed)
    circuit = Circuit(f"tree_{seed}")
    pool: list[str] = []  # signals not yet consumed
    n_inputs = 0

    def fresh_operand() -> str:
        nonlocal n_inputs
        # Prefer reusing an unconsumed signal; mint a new input otherwise.
        if pool and (n_inputs >= max_inputs or rng.random() < 0.5):
            return pool.pop(rng.randrange(len(pool)))
        if n_inputs < max_inputs:
            name = circuit.add_input(f"pi{n_inputs}")
            n_inputs += 1
            return name
        return pool.pop(rng.randrange(len(pool)))

    for index in range(n_gates):
        gate_type = rng.choice(_TREE_GATES)
        if gate_type in (GateType.NOT, GateType.BUF):
            arity = 1
        elif gate_type in (GateType.MUX, GateType.MAJ):
            arity = 3
        else:
            arity = rng.choice((2, 2, 3))
        if len(pool) + (max_inputs - n_inputs) < arity:
            break  # operand supply exhausted: the tree is complete
        fanin = [fresh_operand() for _ in range(arity)]
        name = f"g{index}"
        circuit.add_gate(name, gate_type, fanin)
        pool.append(name)

    # Every unconsumed gate is a root of its own tree; observe them all.
    # (The most recently added gate is always unconsumed, so at least one
    # output exists.)
    for name in pool:
        if name.startswith("g"):
            circuit.mark_output(name)
    return circuit


def force_vector(engine: EPPEngine, prune: bool | None = None,
                 schedule: str | None = None, cells: str | None = None,
                 chunking: str | None = None, rows: str | None = None):
    backend = engine.vector_backend(prune=prune, schedule=schedule,
                                    cells=cells, chunking=chunking, rows=rows)
    backend.min_vector_work = 0
    return backend


def assert_all_sites_agree(reference: dict, candidate: dict):
    assert list(reference) == list(candidate)
    for site, expected in reference.items():
        got = candidate[site]
        assert got.p_sensitized == pytest.approx(expected.p_sensitized, abs=TOL), site
        assert got.cone_size == expected.cone_size, site
        assert set(got.sink_values) == set(expected.sink_values), site
        for sink, value in expected.sink_values.items():
            assert got.sink_values[sink].isclose(value, tolerance=TOL), (site, sink)


# ---------------------------------------------------------------- properties


@settings(max_examples=30, deadline=None, derandomize=True)
@given(
    n_inputs=st.integers(min_value=2, max_value=8),
    n_gates=st.integers(min_value=4, max_value=40),
    seed=st.integers(min_value=0, max_value=2**16),
    track_polarity=st.booleans(),
    prune=st.booleans(),
    schedule=st.sampled_from(("cone", "input")),
    cells=st.sampled_from(("auto", "on", "off")),
    chunking=st.sampled_from(("auto", "adaptive", "fixed")),
    rows=st.sampled_from(("auto", "compact", "full")),
)
def test_scalar_vs_vector_agree_on_random_circuits(
    n_inputs, n_gates, seed, track_polarity, prune, schedule, cells, chunking,
    rows,
):
    """Vectorization — dense or cone-pruned, row-sparse or cell-compacted,
    full-row or compacted-row state matrices, input-ordered or
    cone-clustered, fixed or adaptive chunk widths — is a pure
    reassociation: scalar == vector to 1e-9."""
    circuit = random_combinational(n_inputs, n_gates, seed=seed)
    engine = EPPEngine(circuit, track_polarity=track_polarity)
    force_vector(engine, prune=prune, schedule=schedule, cells=cells,
                 chunking=chunking, rows=rows)
    scalar = engine.analyze(backend="scalar")
    vector = engine.analyze(backend="vector", prune=prune, schedule=schedule,
                            cells=cells, chunking=chunking, rows=rows)
    assert_all_sites_agree(scalar, vector)


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    n_inputs=st.integers(min_value=3, max_value=8),
    n_gates=st.integers(min_value=8, max_value=40),
    seed=st.integers(min_value=0, max_value=2**16),
    cells=st.sampled_from(("on", "auto")),
    batch_size=st.integers(min_value=2, max_value=9),
    rows=st.sampled_from(("compact", "full")),
)
def test_cell_compacted_bit_equal_on_random_circuits(
    n_inputs, n_gates, seed, cells, batch_size, rows
):
    """The compacted kernels are not merely close to the dense sweep —
    they run the same elementwise IEEE ops per computed cell, whether the
    state matrix is the full (n + 2)-row buffer or the per-chunk
    union-of-cones remap, so packed arrays must match np.array_equal
    across random circuits (MUX/MAJ truth tables and sentinel-padded
    mixed arities included)."""
    circuit = random_combinational(n_inputs, n_gates, seed=seed)
    engine = EPPEngine(circuit)
    ids = [engine._cones.resolve(site) for site in engine.default_sites()]
    reference = force_vector(engine, prune=False, schedule="input",
                             cells="off", chunking="fixed", rows="full")
    reference.batch_size = batch_size
    expected = reference.pack_sites(ids)
    compacted = force_vector(engine, prune=True, schedule="cone",
                             cells=cells, chunking="adaptive", rows=rows)
    compacted.batch_size = batch_size
    packed = compacted.pack_sites(ids)
    for left, right in zip(expected, packed):
        assert np.array_equal(left, right)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_gates=st.integers(min_value=3, max_value=20),
)
def test_epp_exact_on_fanout_free_cones(seed, n_gates):
    """On trees (≤ 12 inputs) EPP equals exhaustive simulation to 1e-9."""
    circuit = random_tree_circuit(seed, max_inputs=12, n_gates=n_gates)
    truth = exhaustive_all_sites(circuit)
    engine = EPPEngine(circuit)
    force_vector(engine)
    scalar = engine.analyze(backend="scalar")
    vector = engine.analyze(backend="vector")
    assert_all_sites_agree(scalar, vector)
    for site in circuit.gates:
        assert scalar[site].p_sensitized == pytest.approx(truth[site], abs=TOL), site


@settings(max_examples=15, deadline=None, derandomize=True)
@given(
    n_inputs=st.integers(min_value=4, max_value=8),
    gates_per_input=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_epp_error_bounded_under_reconvergence(n_inputs, gates_per_input, seed):
    """On general random circuits EPP stays inside the documented band.

    Density is controlled (≤ 5 gates per input): a handful of inputs
    driving dozens of gates is pure reconvergence, a regime the paper's
    benchmarks never approach and where first-order EPP error is unbounded
    by design.  Inside the realistic band, a 200-circuit scan shows
    worst-case per-site error 0.33 and worst mean 0.083; the asserted
    bounds carry ~1.5x headroom over that envelope.
    """
    circuit = random_combinational(n_inputs, n_inputs * gates_per_input, seed=seed)
    truth = exhaustive_all_sites(circuit)
    engine = EPPEngine(circuit)
    errors = [
        abs(engine.p_sensitized(site) - truth[site]) for site in circuit.gates
    ]
    assert max(errors) < 0.5, max(errors)
    assert sum(errors) / len(errors) < 0.15, sum(errors) / len(errors)


# ------------------------------------------------- three-way with real pools


@pytest.mark.parametrize("seed", [11, 407, 90210])
def test_scalar_vector_sharded_threeway(seed):
    """The full differential triangle, sharded side on a real process pool
    (cone-clustered shards, shared-memory transport where available)."""
    circuit = random_combinational(8, 120, seed=seed)
    engine = EPPEngine(circuit)
    force_vector(engine, schedule="cone")
    sharded = engine.sharded_backend(jobs=2, schedule="cone")
    sharded.min_process_work = 0
    try:
        scalar = engine.analyze(backend="scalar")
        vector = engine.analyze(backend="vector", schedule="cone")
        fanned = engine.analyze(backend="sharded", jobs=2, schedule="cone")
        assert sharded.pool_started
    finally:
        sharded.close()
    assert_all_sites_agree(scalar, vector)
    assert_all_sites_agree(vector, fanned)
