"""Experiment harnesses: Figure 1, Table 1, Table 2 (budget-limited)."""

import pytest

from repro.errors import ConfigError
from repro.experiments.figure1 import run_figure1
from repro.experiments.profiles import PAPER_TABLE2, TABLE2_CIRCUITS
from repro.experiments.table1 import grid_prob4, run_table1
from repro.experiments.table2 import (
    Table2Config,
    format_table2,
    run_table2,
    run_table2_circuit,
)


class TestFigure1:
    def test_matches_paper_exactly(self):
        result = run_figure1()
        assert result.matches_paper
        assert result.p_sensitized == pytest.approx(0.434, abs=1e-12)

    def test_format_prints_all_intermediates(self):
        text = run_figure1().format()
        for fragment in ("P(E)", "P(D)", "P(G)", "P(H)", "0.042", "0.392", "[MATCH]"):
            assert fragment in text


class TestTable1:
    def test_all_rules_match_at_coarse_grid(self):
        result = run_table1(steps=2, arities=(1, 2))
        assert result.all_match
        assert set(result.max_error) >= {"AND", "OR", "NOT"}

    def test_grid_points_are_valid_vectors(self):
        for point in grid_prob4(steps=3):
            assert all(component >= 0 for component in point)
            assert sum(point) == pytest.approx(1.0)

    def test_format(self):
        text = run_table1(steps=2, arities=(1, 2)).format()
        assert "ALL RULES MATCH" in text
        assert "P1(out) = prod P1(Xi)" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def tiny_rows(self):
        config = Table2Config(
            circuits=("s27", "s953"),
            sim_vectors=100,
            sim_sites=2,
            accuracy_sites=15,
            reference_vectors=4000,
            sp_vectors=4000,
            epp_sites=30,
        )
        return run_table2(config)

    def test_roster_matches_paper(self):
        assert TABLE2_CIRCUITS == list(PAPER_TABLE2)
        assert len(TABLE2_CIRCUITS) == 11

    def test_rows_are_well_formed(self, tiny_rows):
        for row in tiny_rows:
            assert row.syst_ms > 0
            assert row.simt_s > 0
            assert row.spt_s > 0
            assert 0 <= row.pct_dif < 50
            assert row.n_nodes > 0

    def test_epp_is_faster_than_serial_simulation(self, tiny_rows):
        for row in tiny_rows:
            assert row.esp > 1.0, row.circuit
            assert row.isp > 1.0, row.circuit

    def test_extrapolation_is_linear(self, tiny_rows):
        for row in tiny_rows:
            assert row.simt_ref_s == pytest.approx(
                row.simt_s * 100_000 / row.sim_vectors
            )
            assert row.esp_ref > row.esp

    def test_format_contains_paper_reference(self, tiny_rows):
        text = format_table2(tiny_rows)
        assert "paper avg" in text
        assert "extrapolated" in text

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            Table2Config(sim_vectors=0)
        with pytest.raises(ConfigError):
            Table2Config(circuits=("c6288",))
        with pytest.raises(ConfigError):
            Table2Config(backend="simd")
        with pytest.raises(ConfigError):
            Table2Config(backend="sharded", jobs=0)
        with pytest.raises(ConfigError, match="sharded"):
            Table2Config(backend="scalar", jobs=2)  # jobs needs sharded

    def test_sharded_backend_row(self):
        """The sharded SysT column really engages worker processes (the
        crossover guard is bypassed for an explicit sharded request)."""
        config = Table2Config(
            circuits=("s27",), backend="sharded", jobs=2, sim_vectors=50,
            sim_sites=1, accuracy_sites=5, reference_vectors=1000,
            sp_vectors=1000, epp_sites=5,
        )
        row = run_table2_circuit("s27", config)
        assert row.syst_ms > 0
        assert row.circuit == "s27"

    def test_quick_and_full_presets(self):
        assert len(Table2Config.quick().circuits) == 4
        assert Table2Config.full().circuits == tuple(TABLE2_CIRCUITS)

    def test_single_circuit_runner(self):
        config = Table2Config(
            circuits=("s27",), sim_vectors=50, sim_sites=1,
            accuracy_sites=5, reference_vectors=1000, sp_vectors=1000, epp_sites=5,
        )
        row = run_table2_circuit("s27", config)
        assert row.circuit == "s27"
        assert row.n_nodes == 10


class TestTable2Roster:
    """circuit_jobs: whole circuits fanned across a worker pool."""

    TINY = dict(
        sim_vectors=50, sim_sites=1, accuracy_sites=5,
        reference_vectors=1000, sp_vectors=1000, epp_sites=5,
    )

    def test_circuit_jobs_validation(self):
        with pytest.raises(ConfigError, match="circuit_jobs"):
            Table2Config(circuit_jobs=0)
        with pytest.raises(ConfigError, match="nested"):
            Table2Config(backend="sharded", circuit_jobs=2)
        Table2Config(backend="vector", circuit_jobs=2)  # fine
        Table2Config(backend="sharded", jobs=2, circuit_jobs=1)  # serial: fine

    def test_roster_pool_rows_match_serial(self):
        """Every row is an independent seeded measurement, so the
        deterministic columns of a fanned-out run are identical to a
        serial run's — only the timing columns may differ."""
        serial = run_table2(Table2Config(circuits=("s27", "s953"), **self.TINY))
        parallel = run_table2(
            Table2Config(circuits=("s27", "s953"), circuit_jobs=2, **self.TINY)
        )
        assert [row.circuit for row in parallel] == [row.circuit for row in serial]
        for got, want in zip(parallel, serial):
            assert got.n_nodes == want.n_nodes
            assert got.pct_dif == want.pct_dif
            assert got.mean_abs_dif == want.mean_abs_dif
            assert got.n_accuracy_sites == want.n_accuracy_sites
            assert got.sim_vectors == want.sim_vectors
            assert got.syst_ms > 0 and got.simt_s > 0

    def test_circuit_jobs_one_stays_serial(self):
        """circuit_jobs=1 (or a single-circuit roster) never spawns a
        pool — same code path as the default serial loop."""
        rows = run_table2(
            Table2Config(circuits=("s27",), circuit_jobs=4, **self.TINY)
        )
        assert [row.circuit for row in rows] == ["s27"]

    def test_worker_circuit_cache_builds_once(self):
        """The worker-side cache: a re-submitted roster job for the same
        circuit reuses the cached Circuit object — and therefore the
        batch plan / cone index already cached on its compiled form."""
        import pickle

        from repro.experiments import table2 as table2_module

        table2_module._ROSTER_CIRCUITS.clear()
        table2_module._ROSTER_STATS["circuits_built"] = 0
        try:
            table2_module._roster_worker_init(
                pickle.dumps(Table2Config(circuits=("s27",), **self.TINY))
            )
            first = table2_module._run_roster_job("s27")
            cached = table2_module._ROSTER_CIRCUITS["s27"]
            compiled = cached.compiled()
            again = table2_module._run_roster_job("s27")
            assert table2_module._ROSTER_STATS["circuits_built"] == 1
            assert table2_module._ROSTER_CIRCUITS["s27"] is cached
            assert cached.compiled() is compiled  # plan caches survive
            assert first.n_nodes == again.n_nodes
            assert first.pct_dif == again.pct_dif
        finally:
            table2_module._ROSTER_CIRCUITS.clear()
            table2_module._ROSTER_STATS["circuits_built"] = 0
            table2_module._ROSTER_CONFIG = None
