"""Scalar vs vector EPP backend equivalence (golden 1e-9 agreement).

The scalar engine is the reference oracle; the batched NumPy backend must
reproduce its ``P_sensitized``, per-sink four-valued vectors and cone
sizes to 1e-9 on every circuit, every gate type (including MUX/MAJ via the
vectorized truth-table kernel), with polarity tracking on and off, and
through ``collapse=True``.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.epp import EPPEngine, available_backends, default_backend
from repro.errors import AnalysisError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import generate_iscas
from repro.netlist.library import s27

TOL = 1e-9


def gate_zoo() -> Circuit:
    """Every combinational gate type, reconvergence, a DFF boundary."""
    circuit = Circuit("zoo")
    for name in ("i0", "i1", "i2", "i3"):
        circuit.add_input(name)
    circuit.add_gate("and2", GateType.AND, ["i0", "i1"])
    circuit.add_gate("and3", GateType.AND, ["i0", "i1", "i2"])
    circuit.add_gate("nand2", GateType.NAND, ["i1", "i2"])
    circuit.add_gate("or2", GateType.OR, ["i2", "i3"])
    circuit.add_gate("nor2", GateType.NOR, ["i0", "i3"])
    circuit.add_gate("xor2", GateType.XOR, ["and2", "or2"])
    circuit.add_gate("xnor2", GateType.XNOR, ["nand2", "nor2"])
    circuit.add_gate("inv", GateType.NOT, ["xor2"])
    circuit.add_gate("buf", GateType.BUF, ["xnor2"])
    circuit.add_gate("mux", GateType.MUX, ["inv", "buf", "and3"])
    circuit.add_gate("maj3", GateType.MAJ, ["mux", "xor2", "i3"])
    circuit.add_gate("maj5", GateType.MAJ, ["mux", "xor2", "nor2", "i0", "i1"])
    circuit.add_dff("q", "xor2")
    circuit.add_gate("fromq", GateType.AND, ["q", "i0"])
    for out in ("mux", "maj3", "maj5", "fromq"):
        circuit.mark_output(out)
    return circuit


def build_circuit(name: str) -> Circuit:
    if name == "zoo":
        return gate_zoo()
    if name == "s27":
        return s27()
    return generate_iscas(name)


def force_vector(engine: EPPEngine, batch_size: int | None = None):
    """A vector backend with the small-workload crossover disabled, so the
    vectorized kernels themselves are exercised even on tiny circuits."""
    backend = engine.vector_backend(batch_size)
    backend.min_vector_work = 0
    return backend


def assert_backends_agree(circuit: Circuit, track_polarity: bool = True,
                          batch_size: int | None = None, collapse: bool = False):
    engine = EPPEngine(circuit, track_polarity=track_polarity)
    force_vector(engine, batch_size)
    scalar = engine.analyze(backend="scalar", collapse=collapse)
    vector = engine.analyze(backend="vector", collapse=collapse,
                            batch_size=batch_size)
    assert list(scalar) == list(vector)  # same sites, same order
    for site, expected in scalar.items():
        got = vector[site]
        assert got.p_sensitized == pytest.approx(expected.p_sensitized, abs=TOL)
        assert got.cone_size == expected.cone_size
        assert set(got.sink_values) == set(expected.sink_values)
        for sink, value in expected.sink_values.items():
            assert got.sink_values[sink].isclose(value, tolerance=TOL), (
                site, sink, value, got.sink_values[sink])


class TestBackendEquivalence:
    @pytest.mark.parametrize("circuit_name", ["zoo", "s27", "s953", "s1423"])
    @pytest.mark.parametrize("track_polarity", [True, False])
    def test_full_analyze_agrees(self, circuit_name, track_polarity):
        assert_backends_agree(build_circuit(circuit_name), track_polarity)

    @pytest.mark.parametrize("circuit_name", ["zoo", "s27", "s953"])
    def test_collapse_agrees(self, circuit_name):
        assert_backends_agree(build_circuit(circuit_name), collapse=True)

    def test_tiny_batches_chunk_correctly(self):
        """batch_size smaller than the site count exercises the chunk loop
        (including the narrow final chunk) on the real vector kernels."""
        assert_backends_agree(build_circuit("zoo"), batch_size=3)
        assert_backends_agree(build_circuit("s27"), batch_size=4)

    @pytest.mark.slow
    def test_s9234_full_circuit_agrees(self):
        assert_backends_agree(build_circuit("s9234"))

    def test_p_sensitized_many_matches_scalar(self):
        circuit = build_circuit("s953")
        engine = EPPEngine(circuit)
        backend = force_vector(engine)
        sites = engine.default_sites()
        site_ids = [engine._cones.resolve(s) for s in sites]
        batch = backend.p_sensitized_many(site_ids)
        for site, value in zip(sites, batch):
            assert value == pytest.approx(engine.p_sensitized(site), abs=TOL)

    def test_input_and_state_sites_agree(self):
        """Sites on primary inputs and DFF outputs (sources, not gates)."""
        circuit = build_circuit("zoo")
        engine = EPPEngine(circuit)
        force_vector(engine)
        sites = engine.default_sites(include_inputs=True, include_state=True)
        scalar = engine.analyze(sites=sites, backend="scalar")
        vector = engine.analyze(sites=sites, backend="vector")
        for site in scalar:
            assert vector[site].p_sensitized == pytest.approx(
                scalar[site].p_sensitized, abs=TOL)


class TestBackendSelection:
    def test_default_backend_is_vector_with_numpy(self):
        assert default_backend() == "vector"
        assert available_backends() == ("scalar", "vector", "sharded")

    def test_unknown_backend_rejected(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="unknown EPP backend"):
            engine.analyze(backend="simd")

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_batch_size_rejected(self, bad):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="batch_size"):
            engine.analyze(backend="vector", batch_size=bad)

    def test_crossover_falls_back_to_scalar_on_tiny_workloads(self):
        """Below min_vector_work the vector backend delegates to the scalar
        kernel — same results, no array dispatch."""
        engine = EPPEngine(s27())
        backend = engine.vector_backend()
        assert engine.compiled.n * len(engine.default_sites()) < backend.min_vector_work
        results = engine.analyze(backend="vector")
        scalar = engine.analyze(backend="scalar")
        assert results.keys() == scalar.keys()
        for site in results:
            assert results[site].p_sensitized == pytest.approx(
                scalar[site].p_sensitized, abs=TOL)

    def test_analyzer_backend_passthrough(self):
        from repro.core.analysis import SERAnalyzer

        circuit = build_circuit("zoo")
        scalar_report = SERAnalyzer(circuit).analyze(backend="scalar")
        vector_report = SERAnalyzer(circuit).analyze(backend="vector")
        assert scalar_report.nodes.keys() == vector_report.nodes.keys()
        for site in scalar_report.nodes:
            assert vector_report.nodes[site].fit == pytest.approx(
                scalar_report.nodes[site].fit, rel=1e-9)
