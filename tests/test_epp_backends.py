"""Scalar vs vector EPP backend equivalence (golden 1e-9 agreement).

The scalar engine is the reference oracle; the batched NumPy backend must
reproduce its ``P_sensitized``, per-sink four-valued vectors and cone
sizes to 1e-9 on every circuit, every gate type (including MUX/MAJ via the
vectorized truth-table kernel), with polarity tracking on and off, and
through ``collapse=True``.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.epp import EPPEngine, available_backends, default_backend
from repro.errors import AnalysisError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import generate_iscas
from repro.netlist.library import s27

TOL = 1e-9


def gate_zoo() -> Circuit:
    """Every combinational gate type, reconvergence, a DFF boundary."""
    circuit = Circuit("zoo")
    for name in ("i0", "i1", "i2", "i3"):
        circuit.add_input(name)
    circuit.add_gate("and2", GateType.AND, ["i0", "i1"])
    circuit.add_gate("and3", GateType.AND, ["i0", "i1", "i2"])
    circuit.add_gate("nand2", GateType.NAND, ["i1", "i2"])
    circuit.add_gate("or2", GateType.OR, ["i2", "i3"])
    circuit.add_gate("nor2", GateType.NOR, ["i0", "i3"])
    circuit.add_gate("xor2", GateType.XOR, ["and2", "or2"])
    circuit.add_gate("xnor2", GateType.XNOR, ["nand2", "nor2"])
    circuit.add_gate("inv", GateType.NOT, ["xor2"])
    circuit.add_gate("buf", GateType.BUF, ["xnor2"])
    circuit.add_gate("mux", GateType.MUX, ["inv", "buf", "and3"])
    circuit.add_gate("maj3", GateType.MAJ, ["mux", "xor2", "i3"])
    circuit.add_gate("maj5", GateType.MAJ, ["mux", "xor2", "nor2", "i0", "i1"])
    circuit.add_dff("q", "xor2")
    circuit.add_gate("fromq", GateType.AND, ["q", "i0"])
    for out in ("mux", "maj3", "maj5", "fromq"):
        circuit.mark_output(out)
    return circuit


def build_circuit(name: str) -> Circuit:
    if name == "zoo":
        return gate_zoo()
    if name == "s27":
        return s27()
    return generate_iscas(name)


def force_vector(engine: EPPEngine, batch_size: int | None = None,
                 prune: bool | None = None, schedule: str | None = None,
                 cells: str | None = None, chunking: str | None = None,
                 rows: str | None = None):
    """A vector backend with the small-workload crossover disabled, so the
    vectorized kernels themselves are exercised even on tiny circuits."""
    backend = engine.vector_backend(batch_size, prune=prune, schedule=schedule,
                                    cells=cells, chunking=chunking, rows=rows)
    backend.min_vector_work = 0
    return backend


def assert_backends_agree(circuit: Circuit, track_polarity: bool = True,
                          batch_size: int | None = None, collapse: bool = False,
                          prune: bool | None = None,
                          schedule: str | None = None,
                          cells: str | None = None,
                          chunking: str | None = None,
                          rows: str | None = None):
    engine = EPPEngine(circuit, track_polarity=track_polarity)
    force_vector(engine, batch_size, prune, schedule, cells, chunking, rows)
    scalar = engine.analyze(backend="scalar", collapse=collapse)
    vector = engine.analyze(backend="vector", collapse=collapse,
                            batch_size=batch_size, prune=prune,
                            schedule=schedule, cells=cells, chunking=chunking,
                            rows=rows)
    assert list(scalar) == list(vector)  # same sites, same order
    for site, expected in scalar.items():
        got = vector[site]
        assert got.p_sensitized == pytest.approx(expected.p_sensitized, abs=TOL)
        assert got.cone_size == expected.cone_size
        assert set(got.sink_values) == set(expected.sink_values)
        for sink, value in expected.sink_values.items():
            assert got.sink_values[sink].isclose(value, tolerance=TOL), (
                site, sink, value, got.sink_values[sink])


class TestBackendEquivalence:
    @pytest.mark.parametrize("circuit_name", ["zoo", "s27", "s953", "s1423"])
    @pytest.mark.parametrize("track_polarity", [True, False])
    def test_full_analyze_agrees(self, circuit_name, track_polarity):
        assert_backends_agree(build_circuit(circuit_name), track_polarity)

    @pytest.mark.parametrize("circuit_name", ["zoo", "s27", "s953"])
    def test_collapse_agrees(self, circuit_name):
        assert_backends_agree(build_circuit(circuit_name), collapse=True)

    def test_tiny_batches_chunk_correctly(self):
        """batch_size smaller than the site count exercises the chunk loop
        (including the narrow final chunk) on the real vector kernels."""
        assert_backends_agree(build_circuit("zoo"), batch_size=3)
        assert_backends_agree(build_circuit("s27"), batch_size=4)

    @pytest.mark.slow
    def test_s9234_full_circuit_agrees(self):
        assert_backends_agree(build_circuit("s9234"))

    def test_p_sensitized_many_matches_scalar(self):
        circuit = build_circuit("s953")
        engine = EPPEngine(circuit)
        backend = force_vector(engine)
        sites = engine.default_sites()
        site_ids = [engine._cones.resolve(s) for s in sites]
        batch = backend.p_sensitized_many(site_ids)
        for site, value in zip(sites, batch):
            assert value == pytest.approx(engine.p_sensitized(site), abs=TOL)

    def test_input_and_state_sites_agree(self):
        """Sites on primary inputs and DFF outputs (sources, not gates)."""
        circuit = build_circuit("zoo")
        engine = EPPEngine(circuit)
        force_vector(engine)
        sites = engine.default_sites(include_inputs=True, include_state=True)
        scalar = engine.analyze(sites=sites, backend="scalar")
        vector = engine.analyze(sites=sites, backend="vector")
        for site in scalar:
            assert vector[site].p_sensitized == pytest.approx(
                scalar[site].p_sensitized, abs=TOL)


class TestSparseSweepEquivalence:
    """The cone-aware sparse sweep is bit-equal to the dense vector sweep.

    Pruning only skips rows whose fanins are off-path in every column (the
    dense sweep writes their SP constants back unchanged) and the targeted
    scatter writes the same values the ``np.where`` scatter wrote, so the
    agreement here is exact — asserted at 1e-9 against the scalar oracle
    and bit-identical against the dense vector backend.
    """

    @pytest.mark.parametrize("circuit_name", ["zoo", "s27", "s953", "s1423"])
    @pytest.mark.parametrize("schedule", ["cone", "input"])
    def test_sparse_agrees_with_scalar(self, circuit_name, schedule):
        assert_backends_agree(build_circuit(circuit_name), prune=True,
                              schedule=schedule)

    @pytest.mark.parametrize("circuit_name", ["zoo", "s953"])
    def test_sparse_bit_equal_to_dense(self, circuit_name):
        """prune/schedule change *which rows compute*, never their values:
        packed arrays must be bitwise identical, not merely close."""
        circuit = build_circuit(circuit_name)
        engine = EPPEngine(circuit)
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        packs = {}
        for prune, schedule in ((False, "input"), (True, "input"), (True, "cone")):
            backend = force_vector(engine, batch_size=5, prune=prune,
                                   schedule=schedule)
            packs[(prune, schedule)] = backend.pack_sites(ids)
        reference = packs[(False, "input")]
        for key, packed in packs.items():
            for left, right in zip(reference, packed):
                assert np.array_equal(left, right), key

    @pytest.mark.parametrize("prune", [True, False])
    def test_mixed_arity_sentinel_groups_prune_correctly(self, prune):
        """The zoo's and2/and3 share one sentinel-padded group; slicing
        active rows must keep the padding columns aligned per row."""
        assert_backends_agree(gate_zoo(), prune=prune, batch_size=2,
                              schedule="cone")

    #: Every sweep strategy the backend can run, forced explicitly: the
    #: PR-3 row-sparse tier, the cell-compacted tier (closed forms and
    #: MUX/MAJ truth tables via the zoo, sentinel-padded mixed arities via
    #: the shared and2/and3 group), the adaptive chunk splitter, the
    #: compacted and full-row state layouts crossed with both cell tiers,
    #: and the full auto stack (cost-model tiers + saturated dense
    #: fallback + compacted rows).
    FORCED_CONFIGS = (
        dict(prune=True, schedule="cone", cells="off", chunking="fixed"),
        dict(prune=True, schedule="cone", cells="on", chunking="fixed"),
        dict(prune=True, schedule="cone", cells="on", chunking="adaptive"),
        dict(prune=True, schedule="input", cells="on", chunking="adaptive"),
        dict(prune=True, schedule="cone", cells="auto", chunking="auto"),
        dict(prune=None, schedule="auto", cells="auto", chunking="auto"),
        dict(prune=True, schedule="cone", cells="off", chunking="fixed",
             rows="compact"),
        dict(prune=True, schedule="cone", cells="on", chunking="fixed",
             rows="compact"),
        dict(prune=True, schedule="input", cells="auto", chunking="adaptive",
             rows="compact"),
        dict(prune=True, schedule="cone", cells="auto", chunking="auto",
             rows="full"),
        dict(prune=None, schedule="auto", cells="auto", chunking="auto",
             rows="auto"),
    )

    @pytest.mark.parametrize("circuit_name", ["zoo", "s27", "s953"])
    def test_cell_compacted_bit_equal_to_dense(self, circuit_name):
        """The compacted kernels compute the same elementwise IEEE ops per
        on-path cell as the dense kernels, so every forced strategy must
        produce *bitwise* identical packed arrays — np.array_equal, not a
        tolerance."""
        circuit = build_circuit(circuit_name)
        engine = EPPEngine(circuit)
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        reference = force_vector(
            engine, batch_size=5, prune=False, schedule="input",
            cells="off", chunking="fixed",
        ).pack_sites(ids)
        for config in self.FORCED_CONFIGS:
            backend = force_vector(engine, batch_size=5, **config)
            packed = backend.pack_sites(ids)
            for left, right in zip(reference, packed):
                assert np.array_equal(left, right), config

    def test_cell_tier_engages_and_computes_fewer_cells(self):
        """The fast-suite smoke for the compacted code path: forcing
        cells="on" routes partially-on-path groups through the compacted
        kernels, and the stats show fewer cells computed than spanned."""
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, batch_size=16, prune=True,
                               schedule="cone", cells="on")
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend.analyze_sites(ids)
        stats = backend.sweep_stats
        assert stats["groups_cell"] > 0
        assert 0 < stats["cells_computed"] < stats["cells_total"]
        assert stats["cells_on"] == stats["cells_computed"]

    def test_auto_cost_model_mixes_tiers(self):
        """cells="auto" must route dense-ish groups to the row kernels and
        sparse groups to the compacted kernels on the same sweep set."""
        engine = EPPEngine(build_circuit("s1423"))
        backend = force_vector(engine, batch_size=64, prune=True,
                               schedule="cone", cells="auto")
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend.analyze_sites(ids)
        stats = backend.sweep_stats
        assert stats["groups_cell"] > 0
        assert stats["groups_row"] > 0
        assert (
            stats["cells_on"]
            <= stats["cells_computed"]
            < stats["cells_total"]
        )

    def test_dirty_row_reset_across_width_changes(self):
        """Buffer reuse across sweeps of different widths: the dirty-row
        restore must leave no stale cells from a previous wider sweep."""
        engine = EPPEngine(build_circuit("s953"))
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend = force_vector(engine, batch_size=32, prune=True,
                               schedule="cone", cells="on")
        first = backend.pack_sites(ids)
        narrow = backend.pack_sites(ids[:7])  # narrow sweep between full ones
        again = backend.pack_sites(ids)
        for left, right in zip(first, again):
            assert np.array_equal(left, right)
        fresh = force_vector(
            EPPEngine(build_circuit("s953")), batch_size=32, prune=True,
            schedule="cone", cells="on",
        ).pack_sites(ids[:7])
        for left, right in zip(fresh, narrow):
            assert np.array_equal(left, right)

    @pytest.mark.parametrize("batch_size", [None, 3])
    def test_sites_inside_other_sites_cones(self, batch_size):
        """A chunk mixing a site with members of its own fanout cone: the
        downstream sites' columns must keep their injected 1(a) while the
        upstream site's column propagates through those same rows."""
        circuit = Circuit("chain")
        circuit.add_input("i0")
        circuit.add_input("i1")
        previous = "i0"
        for index in range(8):
            name = f"n{index}"
            circuit.add_gate(name, GateType.AND if index % 2 else GateType.OR,
                             [previous, "i1"])
            previous = name
        circuit.mark_output(previous)
        assert_backends_agree(circuit, prune=True, batch_size=batch_size,
                              schedule="cone")
        assert_backends_agree(circuit, prune=True, batch_size=batch_size,
                              schedule="input")


def two_block_circuit() -> Circuit:
    """Two independent chains with disjoint fanout cones.

    Block A (3 gates) and block B (16 gates) share no paths, so a sweep
    over A-sites and a sweep over B-sites touch disjoint state rows —
    the layout that exposes stale dirty-row bookkeeping: restoring A's
    rows can never clean corruption left in B's.
    """
    circuit = Circuit("blocks")
    circuit.add_input("ia")
    circuit.add_input("ib")
    circuit.add_input("sel")
    previous = "ia"
    for index in range(3):
        name = f"a{index}"
        circuit.add_gate(name, GateType.AND, [previous, "sel"])
        previous = name
    circuit.mark_output(previous)
    previous = "ib"
    for index in range(16):
        name = f"b{index}"
        circuit.add_gate(name, GateType.OR, [previous, "sel"])
        previous = name
    circuit.mark_output(previous)
    return circuit


class TestCompactedRows:
    """``rows="compact"``: per-chunk union-of-cones state matrices.

    Bit-identity against the dense and full-row sweeps is covered by
    ``FORCED_CONFIGS`` above and the hypothesis fuzzer; these tests pin
    the layout mechanics — the compacted path really engages, never
    materializes the full-width template, handles degenerate site lists,
    and the chunk-plan cache reuses remaps across repeated sweeps.
    """

    def test_compact_sweeps_engage_without_template(self):
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, batch_size=16, prune=True,
                               schedule="cone", rows="compact")
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend.analyze_sites(ids)
        stats = backend.sweep_stats
        assert stats["compact_sweeps"] == stats["sweeps"] > 0
        # Every compacted sweep allocated strictly fewer rows than the
        # full (n + 2)-row matrix would have.
        assert stats["compact_rows"] < stats["sweeps"] * (engine.compiled.n + 2)
        assert backend._template is None  # full-width template never built
        assert not backend._buffer_slots  # no slot buffers either

    def test_auto_rows_compacts_pruned_sweeps(self):
        """The default rows="auto" resolves to the compacted layout for
        every forced-pruned sweep."""
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, batch_size=16, prune=True,
                               schedule="cone")
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend.analyze_sites(ids)
        assert backend.rows == "auto"
        assert backend.sweep_stats["compact_sweeps"] > 0

    def test_rows_full_restores_slot_buffers(self):
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, batch_size=16, prune=True,
                               schedule="cone", rows="full")
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend.analyze_sites(ids)
        assert backend.sweep_stats["compact_sweeps"] == 0
        assert backend._template is not None
        assert backend._buffer_slots

    def test_dense_fallback_chunks_stay_full_row(self):
        """prune="auto" on a small saturated circuit runs dense sweeps on
        full-row buffers even when rows="compact" is forced: a dense
        sweep's union is the whole circuit."""
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, rows="compact")  # prune defaults auto
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend.analyze_sites(ids)
        stats = backend.sweep_stats
        assert stats["dense_fallback_sweeps"] == stats["sweeps"] > 0
        assert stats["compact_sweeps"] == 0

    def test_empty_site_list(self):
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, prune=True, rows="compact")
        assert backend.analyze_sites([]) == {}
        assert len(backend.p_sensitized_many([])) == 0
        packed = backend.pack_sites([])
        assert [len(part) for part in packed] == [0, 0, 0, 0, 0]
        assert backend.sweep_stats["sweeps"] == 0

    @pytest.mark.parametrize("circuit_name", ["zoo", "s27"])
    def test_single_site_chunks(self, circuit_name):
        """batch_size=1: every chunk holds one site, so each compacted
        matrix is exactly one cone (plus read rows and sentinels)."""
        assert_backends_agree(build_circuit(circuit_name), prune=True,
                              batch_size=1, schedule="cone", rows="compact")

    @pytest.mark.parametrize("rows", ["compact", "full"])
    def test_sites_inside_other_sites_cones(self, rows):
        """A chunk mixing a site with members of its own fanout cone must
        keep the downstream columns' injected 1(a) in both row layouts."""
        circuit = Circuit("chain")
        circuit.add_input("i0")
        circuit.add_input("i1")
        previous = "i0"
        for index in range(8):
            name = f"n{index}"
            circuit.add_gate(name, GateType.AND if index % 2 else GateType.OR,
                             [previous, "i1"])
            previous = name
        circuit.mark_output(previous)
        assert_backends_agree(circuit, prune=True, batch_size=3,
                              schedule="cone", rows=rows)
        assert_backends_agree(circuit, prune=True, schedule="input", rows=rows)

    def test_chunk_plan_cached_across_sweeps(self):
        """Repeated sweeps of the same chunk reuse one cached row remap."""
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, batch_size=16, prune=True,
                               schedule="cone", rows="compact")
        ids = np.asarray(
            [engine._cones.resolve(s) for s in engine.default_sites()][:16],
            dtype=np.intp,
        )
        first = backend.plan.compact_chunk_plan(ids)
        assert backend.plan.compact_chunk_plan(ids) is first
        backend.pack_sites(ids)
        assert backend.plan.compact_chunk_plan(ids) is first

    def test_release_buffers_clears_chunk_plans(self):
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, batch_size=16, prune=True,
                               schedule="cone", rows="compact")
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend.analyze_sites(ids)
        assert len(backend.plan.chunk_cache) > 0
        backend.release_buffers()
        assert len(backend.plan.chunk_cache) == 0

    def test_compact_plan_translates_sinks(self):
        """A chunk reaching only some sinks reduces over exactly those,
        mapped back to their global sink positions."""
        circuit = two_block_circuit()
        engine = EPPEngine(circuit)
        backend = force_vector(engine, prune=True, schedule="input",
                               rows="compact")
        a_ids = np.asarray([engine._cones.resolve("a0")], dtype=np.intp)
        cplan = backend.plan.compact_chunk_plan(a_ids)
        # Block A reaches one of the two sinks; block B's rows are absent.
        assert len(cplan.sink_positions) == 1
        assert cplan.n_rows < engine.compiled.n
        packed = backend.pack_sites(a_ids)
        dense = force_vector(
            EPPEngine(circuit), prune=False, schedule="input", rows="full",
        ).pack_sites(a_ids)
        for left, right in zip(dense, packed):
            assert np.array_equal(left, right)


class TestDirtyRowLifecycle:
    """Stale dirty-row sets must never describe a buffer they don't match."""

    def _forced_full(self, circuit, batch_size=8):
        engine = EPPEngine(circuit)
        backend = force_vector(engine, batch_size=batch_size, prune=True,
                               schedule="input", cells="off", rows="full")
        return engine, backend

    def test_failed_sweep_invalidates_dirty_tracking(self):
        """A sweep that dies mid-flight leaves the slot buffer partially
        overwritten; the recorded dirty set from the *previous* sweep must
        not be trusted for the next restore (it would skip the rows the
        failed sweep corrupted)."""
        engine, backend = self._forced_full(two_block_circuit())
        a_ids = [engine._cones.resolve("a0")]
        b_ids = [engine._cones.resolve(f"b{index}") for index in range(4)]
        first = backend.pack_sites(a_ids)  # slot 0: dirty = A rows only

        # Poison the deepest level (block B's top gate) so the next sweep
        # writes nearly all of B's rows into slot 0 and then dies.
        _, groups = backend.plan.levels[-1]
        originals = [group.rule for group in groups]

        def boom(*args, **kwargs):
            raise RuntimeError("poisoned kernel")

        for group in groups:
            group.rule = boom
        try:
            with pytest.raises(RuntimeError, match="poisoned"):
                backend.pack_sites(b_ids)
        finally:
            for group, original in zip(groups, originals):
                group.rule = original

        again = backend.pack_sites(a_ids)
        for left, right in zip(first, again):
            assert np.array_equal(left, right)

    def test_release_then_reuse_interleaving(self):
        """release_buffers() between sweeps of different unions: the
        freshly allocated slot must start from a clean template, not a
        stale dirty entry."""
        engine, backend = self._forced_full(build_circuit("s953"), 32)
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        wide = backend.pack_sites(ids)
        backend.release_buffers()
        narrow = backend.pack_sites(ids[:7])
        wide_again = backend.pack_sites(ids)
        for left, right in zip(wide, wide_again):
            assert np.array_equal(left, right)
        fresh_engine, fresh = self._forced_full(build_circuit("s953"), 32)
        fresh_narrow = fresh.pack_sites(
            [fresh_engine._cones.resolve(s) for s in fresh_engine.default_sites()][:7]
        )
        for left, right in zip(fresh_narrow, narrow):
            assert np.array_equal(left, right)


class TestUnifiedReductionPath:
    """p_sensitized_many shares one code path with the packed reduction."""

    def test_p_sensitized_many_bit_equal_to_analyze(self):
        """Same sweep, same ``_select_pairs`` reduction, same clamping —
        the two bulk queries can never drift, so equality is exact."""
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine, batch_size=16)
        sites = engine.default_sites()
        site_ids = [engine._cones.resolve(s) for s in sites]
        many = backend.p_sensitized_many(site_ids)
        full = backend.analyze_sites(site_ids)
        assert [full[s].p_sensitized for s in sites] == many.tolist()

    def test_p_sensitized_many_uses_scalar_crossover(self):
        """Below min_vector_work the bulk query delegates to the scalar
        fallback exactly like analyze_sites (it used to skip the guard)."""
        engine = EPPEngine(s27())
        backend = engine.vector_backend()
        site_ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        assert engine.compiled.n * len(site_ids) < backend.min_vector_work
        values = backend.p_sensitized_many(site_ids)
        assert backend._template is None  # vectorized state never built
        for site_id, value in zip(site_ids, values):
            assert value == pytest.approx(engine.p_sensitized(site_id), abs=TOL)

    def test_p_sensitized_many_cone_schedule_stays_aligned(self):
        """Scheduling permutes the sweep; the output must stay aligned
        with the caller's site order."""
        engine = EPPEngine(build_circuit("s953"))
        clustered = force_vector(engine, batch_size=16, schedule="cone")
        site_ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        got = clustered.p_sensitized_many(site_ids)
        ordered = force_vector(engine, batch_size=16, schedule="input")
        assert np.array_equal(got, ordered.p_sensitized_many(site_ids))


class TestReleaseBuffers:
    def test_release_and_lazy_rebuild(self):
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine)
        sites = engine.default_sites()
        first = engine.analyze(sites=sites, backend="vector")
        assert backend._template is not None
        assert backend._buffer_slots
        backend.release_buffers()
        assert backend._template is None
        assert backend._const is None
        assert not backend._buffer_slots
        second = engine.analyze(sites=sites, backend="vector")  # rebuilds
        assert backend._template is not None
        for site in first:
            assert second[site].p_sensitized == first[site].p_sensitized

    def test_engine_release_covers_vector_backend(self):
        engine = EPPEngine(build_circuit("s953"))
        backend = force_vector(engine)
        engine.analyze(backend="vector")
        engine.release_buffers()
        assert backend._template is None

    def test_analyzer_release_buffers(self):
        from repro.core.analysis import SERAnalyzer

        analyzer = SERAnalyzer(build_circuit("s953"))
        backend = force_vector(analyzer.engine)
        analyzer.analyze(backend="vector")
        assert backend._template is not None
        analyzer.release_buffers()
        assert backend._template is None


class TestBackendSelection:
    def test_default_backend_is_vector_with_numpy(self):
        assert default_backend() == "vector"
        assert available_backends() == ("scalar", "vector", "sharded")

    def test_unknown_backend_rejected(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="unknown EPP backend"):
            engine.analyze(backend="simd")

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_batch_size_rejected(self, bad):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="batch_size"):
            engine.analyze(backend="vector", batch_size=bad)

    def test_crossover_falls_back_to_scalar_on_tiny_workloads(self):
        """Below min_vector_work the vector backend delegates to the scalar
        kernel — same results, no array dispatch."""
        engine = EPPEngine(s27())
        backend = engine.vector_backend()
        assert engine.compiled.n * len(engine.default_sites()) < backend.min_vector_work
        results = engine.analyze(backend="vector")
        scalar = engine.analyze(backend="scalar")
        assert results.keys() == scalar.keys()
        for site in results:
            assert results[site].p_sensitized == pytest.approx(
                scalar[site].p_sensitized, abs=TOL)

    def test_analyzer_backend_passthrough(self):
        from repro.core.analysis import SERAnalyzer

        circuit = build_circuit("zoo")
        scalar_report = SERAnalyzer(circuit).analyze(backend="scalar")
        vector_report = SERAnalyzer(circuit).analyze(backend="vector")
        assert scalar_report.nodes.keys() == vector_report.nodes.keys()
        for site in scalar_report.nodes:
            assert vector_report.nodes[site].fit == pytest.approx(
                scalar_report.nodes[site].fit, rel=1e-9)
