"""SEU injection: cones, detection words, ground-truth agreement."""

import pytest

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType, eval_gate_bool
from repro.netlist.library import c17, s27
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import RandomVectorSource, exhaustive_words


class TestCones:
    def test_po_driver_cone(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        cone = injector.fanout_cone("N22")
        assert cone.eval_order == ()  # N22 drives nothing
        assert cone.sinks == (injector.compiled.index["N22"],)

    def test_cone_members_downstream_only(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        cone = injector.fanout_cone("N11")
        names = {injector.compiled.names[i] for i in cone.members}
        assert names == {"N16", "N19", "N22", "N23"}

    def test_cone_stops_at_dff(self, s27_circuit):
        injector = FaultInjector(s27_circuit)
        cone = injector.fanout_cone("G10")  # G10 only feeds DFF G5
        assert cone.eval_order == ()
        sink_names = {injector.compiled.names[i] for i in cone.sinks}
        assert sink_names == {"G10"}  # observable as a D driver

    def test_cone_cached(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        assert injector.fanout_cone("N11") is injector.fanout_cone("N11")

    def test_unknown_site(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        with pytest.raises(SimulationError):
            injector.fanout_cone("nope")
        with pytest.raises(SimulationError):
            injector.fanout_cone(10_000)


class TestDetection:
    def test_po_flip_always_detected(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        words = RandomVectorSource(c17_circuit.inputs, seed=0).next_words(128)
        good = injector.simulator.run(words, 128)
        assert injector.detection_count(good, "N22", 128) == 128

    def test_good_values_restored_after_injection(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        words = RandomVectorSource(c17_circuit.inputs, seed=0).next_words(64)
        good = injector.simulator.run(words, 64)
        snapshot = list(good)
        injector.detection_word(good, "N11", 64)
        assert good == snapshot

    def test_matches_bruteforce_on_c17(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        words, width = exhaustive_words(c17_circuit.inputs)
        good = injector.simulator.run(words, width)
        compiled = injector.compiled
        for site in c17_circuit.gates + c17_circuit.inputs:
            detect = injector.detection_word(good, site, width)
            for pattern in range(width):
                assignment = {
                    name: (words[name] >> pattern) & 1 for name in c17_circuit.inputs
                }
                reference = c17_circuit.evaluate(assignment)
                flipped = _evaluate_with_flip(c17_circuit, assignment, site)
                expected = any(
                    flipped[o] != reference[o] for o in c17_circuit.outputs
                )
                assert ((detect >> pattern) & 1) == int(expected), (site, pattern)

    def test_per_sink_words_disjoint_union(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        words, width = exhaustive_words(c17_circuit.inputs)
        good = injector.simulator.run(words, width)
        per_sink = injector.sink_detection_words(good, "N11", width)
        union = 0
        for word in per_sink.values():
            union |= word
        assert union == injector.detection_word(good, "N11", width)

    def test_masked_site_has_zero_detection(self):
        # g = AND(x, 0-const) blocks everything from x's other branch.
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_const("zero", 0)
        circuit.add_gate("blocked", GateType.AND, ["x", "zero"])
        circuit.add_gate("po", GateType.BUF, ["blocked"])
        circuit.mark_output("po")
        injector = FaultInjector(circuit)
        good = injector.simulator.run({"x": 0b01}, 2)
        assert injector.detection_count(good, "x", 2) == 0

    def test_dff_state_flip_observable_through_logic(self, s27_circuit):
        injector = FaultInjector(s27_circuit)
        sources = s27_circuit.inputs + s27_circuit.flip_flops
        words = RandomVectorSource(sources, seed=1).next_words(256)
        good = injector.simulator.run(words, 256)
        # G11 drives the PO inverter G17 -> always observable.
        assert injector.detection_count(good, "G11", 256) == 256


def _evaluate_with_flip(circuit, assignment, site):
    """Reference faulty evaluation: flip the site's value mid-evaluation."""
    compiled = circuit.compiled()
    values = [0] * compiled.n
    for node_id in compiled.topo:
        gate_type = compiled.gate_type(node_id)
        name = compiled.names[node_id]
        if gate_type is GateType.INPUT:
            values[node_id] = assignment[name]
        else:
            values[node_id] = eval_gate_bool(
                gate_type, [values[p] for p in compiled.fanin(node_id)]
            )
        if name == site:
            values[node_id] ^= 1
    return {compiled.names[i]: values[i] for i in range(compiled.n)}
