"""Physics-based R_SEU derivation."""

import math

import pytest

from repro.core.analysis import SERAnalyzer
from repro.errors import ConfigError
from repro.netlist.gate_types import GateType
from repro.netlist.library import s27
from repro.ser.physics import (
    CriticalCharge,
    HeavyIonEnvironment,
    MessengerPulse,
    NeutronEnvironment,
    WeibullCrossSection,
    set_pulse_width,
    seu_rate_model_from_physics,
    upset_rate,
)


class TestMessengerPulse:
    def test_total_charge_is_conserved(self):
        pulse = MessengerPulse(charge=100e-15)
        assert pulse.collected_charge(1e-6) == pytest.approx(100e-15, rel=1e-6)

    def test_charge_accumulates_monotonically(self):
        pulse = MessengerPulse(charge=50e-15)
        times = [1e-11 * k for k in range(1, 60)]
        values = [pulse.collected_charge(t) for t in times]
        assert values == sorted(values)

    def test_current_zero_before_strike(self):
        assert MessengerPulse(charge=1e-14).current(-1e-12) == 0.0

    def test_peak_is_the_maximum(self):
        pulse = MessengerPulse(charge=1e-13)
        peak = pulse.peak_current
        for t in (pulse.peak_time * f for f in (0.5, 0.9, 1.1, 2.0)):
            assert pulse.current(t) <= peak + 1e-18

    def test_validation(self):
        with pytest.raises(ConfigError):
            MessengerPulse(charge=-1e-15)
        with pytest.raises(ConfigError):
            MessengerPulse(charge=1e-15, tau_alpha=1e-11, tau_beta=2e-11)


class TestCriticalCharge:
    def test_qcrit_formula(self):
        model = CriticalCharge(vdd=1.0, unit_capacitance=2e-15, fanout_fraction=0.0)
        assert model.q_crit(GateType.NOT) == pytest.approx(1e-15)

    def test_bigger_cells_need_more_charge(self):
        model = CriticalCharge()
        assert model.q_crit(GateType.DFF) > model.q_crit(GateType.NOT)

    def test_fanout_increases_qcrit(self):
        model = CriticalCharge()
        assert model.q_crit(GateType.AND, fanout=4) > model.q_crit(GateType.AND, fanout=1)

    def test_unmodeled_type_rejected(self):
        with pytest.raises(ConfigError):
            CriticalCharge().q_crit(GateType.INPUT)


class TestPulseWidth:
    def test_below_threshold_no_pulse(self):
        assert set_pulse_width(1e-15, q_crit=2e-15) == 0.0
        assert set_pulse_width(2e-15, q_crit=2e-15) == 0.0

    def test_log_growth(self):
        q_crit = 1e-15
        w2 = set_pulse_width(2e-15, q_crit)
        w4 = set_pulse_width(4e-15, q_crit)
        assert w4 == pytest.approx(w2 * 2.0)  # ln(4)/ln(2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            set_pulse_width(1e-15, q_crit=0.0)


class TestWeibull:
    def test_zero_below_threshold(self):
        xsection = WeibullCrossSection(let_threshold=5.0)
        assert xsection.sigma(4.9) == 0.0
        assert xsection.sigma(5.0) == 0.0

    def test_saturates(self):
        xsection = WeibullCrossSection(sigma_sat=1e-14, let_threshold=1.0, width=5.0)
        assert xsection.sigma(1e6) == pytest.approx(1e-14, rel=1e-6)

    def test_monotone(self):
        xsection = WeibullCrossSection()
        lets = [1.5 + 0.5 * k for k in range(40)]
        sigmas = [xsection.sigma(l) for l in lets]
        assert sigmas == sorted(sigmas)

    def test_scaled(self):
        xsection = WeibullCrossSection(sigma_sat=1e-14)
        assert xsection.scaled(2.0).sigma(1e6) == pytest.approx(2e-14, rel=1e-6)


class TestEnvironments:
    def test_neutron_altitude_scaling(self):
        env = NeutronEnvironment()
        sea = env.flux(0.0)
        cruise = env.flux(12_000.0)  # airliner altitude
        assert cruise / sea == pytest.approx(math.exp(12_000 / 1400), rel=1e-9)
        assert cruise / sea > 100  # the well-known ~300x at cruise

    def test_heavy_ion_spectrum_decreasing(self):
        env = HeavyIonEnvironment()
        assert env.integral_flux(1.0) > env.integral_flux(10.0)
        assert env.integral_flux(1e9) == 0.0

    def test_differential_consistent_with_integral(self):
        env = HeavyIonEnvironment(k=1e-4, gamma=2.0)
        # numeric derivative of F(>L)
        l, dl = 5.0, 1e-4
        numeric = (env.integral_flux(l - dl) - env.integral_flux(l + dl)) / (2 * dl)
        assert env.differential_flux(l) == pytest.approx(numeric, rel=1e-4)


class TestRateIntegration:
    def test_step_cross_section_closed_form(self):
        """With a sharp Weibull (≈ step at L0), rate ≈ sigma_sat * F(>L0)."""
        xsection = WeibullCrossSection(
            sigma_sat=1e-14, let_threshold=5.0, width=0.01, shape=1.0
        )
        env = HeavyIonEnvironment(k=1e-4, gamma=2.0, let_min=0.5, let_max=500.0)
        rate = upset_rate(xsection, env, n_points=4096)
        expected = 1e-14 * env.integral_flux(5.0)
        assert rate == pytest.approx(expected, rel=0.05)

    def test_higher_threshold_lower_rate(self):
        env = HeavyIonEnvironment()
        low = upset_rate(WeibullCrossSection(let_threshold=1.0), env)
        high = upset_rate(WeibullCrossSection(let_threshold=20.0), env)
        assert high < low

    def test_no_overlap_is_zero(self):
        env = HeavyIonEnvironment(let_max=5.0)
        xsection = WeibullCrossSection(let_threshold=10.0)
        assert upset_rate(xsection, env) == 0.0


class TestDerivedModel:
    def test_produces_usable_model(self):
        model = seu_rate_model_from_physics()
        rate = model.rate(GateType.AND)
        assert rate > 0
        # AND gate matches the physics-derived reference rate exactly.
        env = NeutronEnvironment()
        assert rate == pytest.approx(
            env.upset_rate(WeibullCrossSection().sigma_sat), rel=1e-9
        )

    def test_type_ordering_follows_capacitance(self):
        model = seu_rate_model_from_physics()
        assert model.rate(GateType.DFF) > model.rate(GateType.AND) > model.rate(GateType.NOT)

    def test_sources_are_immune(self):
        model = seu_rate_model_from_physics()
        assert model.rate(GateType.INPUT) == 0.0

    def test_heavy_ion_environment_variant(self):
        model = seu_rate_model_from_physics(environment=HeavyIonEnvironment())
        assert model.rate(GateType.NAND) > 0

    def test_altitude_scales_rates(self):
        ground = seu_rate_model_from_physics(altitude_m=0.0)
        cruise = seu_rate_model_from_physics(altitude_m=12_000.0)
        ratio = cruise.rate(GateType.AND) / ground.rate(GateType.AND)
        assert ratio == pytest.approx(math.exp(12_000 / 1400), rel=1e-6)

    def test_end_to_end_with_analyzer(self):
        model = seu_rate_model_from_physics()
        report = SERAnalyzer(s27(), seu_model=model).analyze()
        assert report.total_fit > 0
