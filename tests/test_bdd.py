"""ROBDD engine: reduction invariants, operations, probabilities."""

import itertools

import pytest

from repro.errors import ProbabilityError
from repro.probability.bdd import BDD


class TestStructure:
    def test_terminals(self):
        bdd = BDD()
        assert BDD.ZERO == 0 and BDD.ONE == 1
        assert len(bdd) == 2

    def test_mk_reduces_equal_children(self):
        bdd = BDD()
        assert bdd.mk(0, 1, 1) == 1

    def test_mk_hashconses(self):
        bdd = BDD()
        a = bdd.mk(0, 0, 1)
        b = bdd.mk(0, 0, 1)
        assert a == b

    def test_var(self):
        bdd = BDD()
        x = bdd.var(3)
        assert bdd.evaluate(x, {3: 0}) == 0
        assert bdd.evaluate(x, {3: 1}) == 1

    def test_max_nodes_guard(self):
        bdd = BDD(max_nodes=4)
        with pytest.raises(ProbabilityError, match="max_nodes"):
            # parity of many variables forces many nodes
            bdd.xor_many([bdd.var(i) for i in range(8)])


class TestOperations:
    def _exhaustive_check(self, bdd, node, n_vars, fn):
        for bits in itertools.product((0, 1), repeat=n_vars):
            assignment = dict(enumerate(bits))
            assert bdd.evaluate(node, assignment) == fn(*bits), bits

    def test_and_or_not(self):
        bdd = BDD()
        x, y = bdd.var(0), bdd.var(1)
        self._exhaustive_check(bdd, bdd.and_(x, y), 2, lambda a, b: a & b)
        self._exhaustive_check(bdd, bdd.or_(x, y), 2, lambda a, b: a | b)
        self._exhaustive_check(bdd, bdd.not_(x), 2, lambda a, b: 1 - a)

    def test_xor(self):
        bdd = BDD()
        x, y, z = bdd.var(0), bdd.var(1), bdd.var(2)
        self._exhaustive_check(
            bdd, bdd.xor_many([x, y, z]), 3, lambda a, b, c: a ^ b ^ c
        )

    def test_ite(self):
        bdd = BDD()
        s, a, b = bdd.var(0), bdd.var(1), bdd.var(2)
        self._exhaustive_check(
            bdd, bdd.ite(s, a, b), 3, lambda sv, av, bv: av if sv else bv
        )

    def test_double_negation_is_identity(self):
        bdd = BDD()
        f = bdd.and_(bdd.var(0), bdd.or_(bdd.var(1), bdd.var(2)))
        assert bdd.not_(bdd.not_(f)) == f

    def test_compose_truth_table_majority(self):
        bdd = BDD()
        variables = [bdd.var(i) for i in range(3)]
        table = tuple(
            int(sum((i >> k) & 1 for k in range(3)) >= 2) for i in range(8)
        )
        maj = bdd.compose_truth_table(table, variables)
        self._exhaustive_check(bdd, maj, 3, lambda a, b, c: int(a + b + c >= 2))

    def test_compose_truth_table_size_mismatch(self):
        bdd = BDD()
        with pytest.raises(ProbabilityError):
            bdd.compose_truth_table((0, 1), [bdd.var(0), bdd.var(1)])


class TestQueries:
    def test_sat_prob_single_var(self):
        bdd = BDD()
        assert bdd.sat_prob(bdd.var(0), {0: 0.3}) == pytest.approx(0.3)

    def test_sat_prob_and(self):
        bdd = BDD()
        f = bdd.and_(bdd.var(0), bdd.var(1))
        assert bdd.sat_prob(f, {0: 0.5, 1: 0.25}) == pytest.approx(0.125)

    def test_sat_prob_matches_enumeration(self):
        bdd = BDD()
        x, y, z = (bdd.var(i) for i in range(3))
        f = bdd.or_(bdd.and_(x, y), bdd.xor_(y, z))
        probs = {0: 0.2, 1: 0.7, 2: 0.4}
        expected = 0.0
        for bits in itertools.product((0, 1), repeat=3):
            weight = 1.0
            for level, bit in enumerate(bits):
                weight *= probs[level] if bit else 1 - probs[level]
            if bdd.evaluate(f, dict(enumerate(bits))):
                expected += weight
        assert bdd.sat_prob(f, probs) == pytest.approx(expected)

    def test_sat_prob_missing_probability(self):
        bdd = BDD()
        with pytest.raises(ProbabilityError, match="missing probability"):
            bdd.sat_prob(bdd.var(5), {})

    def test_support(self):
        bdd = BDD()
        f = bdd.and_(bdd.var(2), bdd.xor_(bdd.var(5), bdd.var(2)))
        assert bdd.support(f) == {2, 5}

    def test_absorption_shrinks_support(self):
        # x2 AND (x5 OR x2) == x2: canonical form drops the dead variable.
        bdd = BDD()
        f = bdd.and_(bdd.var(2), bdd.or_(bdd.var(5), bdd.var(2)))
        assert f == bdd.var(2)
        assert bdd.support(f) == {2}

    def test_count_nodes_terminal(self):
        bdd = BDD()
        assert bdd.count_nodes(BDD.ONE) == 0
        assert bdd.count_nodes(bdd.var(0)) == 1

    def test_evaluate_missing_var(self):
        bdd = BDD()
        with pytest.raises(ProbabilityError):
            bdd.evaluate(bdd.var(1), {})
