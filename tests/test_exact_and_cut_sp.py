"""Exact (global BDD) and cut-BDD signal probabilities."""

import pytest

from repro.errors import ProbabilityError
from repro.netlist.generate import random_combinational
from repro.netlist.library import c17, parity_tree, s27
from repro.netlist.transform import to_combinational
from repro.probability import signal_probabilities
from repro.probability.cut_bdd import cut_signal_probabilities
from repro.probability.exact import build_node_bdds, exact_signal_probabilities
from repro.probability.signal_prob import compute_signal_probabilities


class TestExact:
    def test_rejects_sequential(self):
        with pytest.raises(ProbabilityError, match="sequential"):
            exact_signal_probabilities(s27())

    def test_sequential_via_cut(self):
        cut = to_combinational(s27()).circuit
        sp = exact_signal_probabilities(cut)
        assert sp["G17"] == pytest.approx(1 - sp["G11"], abs=1e-12)

    def test_matches_enumeration_on_c17(self):
        circuit = c17()
        exact = exact_signal_probabilities(circuit)
        # Brute-force ground truth over the 32 input patterns.
        counts = {name: 0 for name in exact}
        for pattern in range(32):
            assignment = {
                name: (pattern >> k) & 1 for k, name in enumerate(circuit.inputs)
            }
            for name, value in circuit.evaluate(assignment).items():
                counts[name] += value
        for name in exact:
            assert exact[name] == pytest.approx(counts[name] / 32)

    def test_build_node_bdds_returns_manager(self):
        bdd, functions, var_levels = build_node_bdds(c17())
        assert set(var_levels) == set(c17().inputs)
        assert "N22" in functions

    def test_equals_topological_on_tree(self):
        circuit = parity_tree(7)
        probs = {f"x{i}": 0.1 * (i + 1) for i in range(7)}
        exact = exact_signal_probabilities(circuit, input_probs=probs)
        topo = compute_signal_probabilities(circuit, input_probs=probs)
        for name in exact:
            assert exact[name] == pytest.approx(topo[name], abs=1e-12)


class TestCut:
    def test_wide_window_recovers_exact(self):
        for seed in range(3):
            circuit = random_combinational(5, 25, seed=seed)
            exact = exact_signal_probabilities(circuit)
            cut = cut_signal_probabilities(circuit, cut_depth=50, max_cut_width=24)
            for name in exact:
                assert cut[name] == pytest.approx(exact[name], abs=1e-9), (seed, name)

    def test_never_worse_than_topological_on_average(self):
        total_topo = 0.0
        total_cut = 0.0
        for seed in range(5):
            circuit = random_combinational(6, 30, seed=seed)
            exact = exact_signal_probabilities(circuit)
            topo = compute_signal_probabilities(circuit)
            cut = cut_signal_probabilities(circuit, cut_depth=4)
            total_topo += sum(abs(exact[n] - topo[n]) for n in exact)
            total_cut += sum(abs(exact[n] - cut[n]) for n in exact)
        assert total_cut <= total_topo + 1e-9

    def test_depth_one_equals_topological(self):
        circuit = c17()
        cut = cut_signal_probabilities(circuit, cut_depth=1)
        topo = compute_signal_probabilities(circuit)
        for name in cut:
            assert cut[name] == pytest.approx(topo[name], abs=1e-12)

    def test_sequential_fixpoint(self):
        # Per-node windows differ, so the NOT-complement relation is only
        # approximate for the cut backend; it must still be close and valid.
        sp = cut_signal_probabilities(s27(), cut_depth=3)
        assert all(0.0 <= p <= 1.0 for p in sp.values())
        assert sp["G17"] == pytest.approx(1 - sp["G11"], abs=0.05)

    def test_parameter_validation(self):
        with pytest.raises(ProbabilityError):
            cut_signal_probabilities(c17(), cut_depth=0)
        with pytest.raises(ProbabilityError):
            cut_signal_probabilities(c17(), max_cut_width=1)


class TestFacade:
    def test_all_methods_dispatch(self):
        circuit = c17()
        for method in ("topological", "cut", "monte_carlo", "exact"):
            sp = signal_probabilities(circuit, method=method, **(
                {"n_vectors": 2000} if method == "monte_carlo" else {}
            ))
            assert set(sp) == {node.name for node in circuit}

    def test_unknown_method(self):
        with pytest.raises(ProbabilityError, match="unknown"):
            signal_probabilities(c17(), method="astrology")
