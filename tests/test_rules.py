"""EPP propagation rules: Table 1 closed forms and the generic rule."""

import itertools

import pytest

from repro.core.fourvalue import EPPValue
from repro.core.rules import (
    and_rule,
    buf_rule,
    merge_polarity,
    nand_rule,
    nor_rule,
    not_rule,
    or_rule,
    propagate_values,
    rule_for_code,
    truth_table_rule,
    xnor_rule,
    xor_rule,
)
from repro.errors import AnalysisError
from repro.netlist.gate_types import (
    CODE_AND,
    CODE_DFF,
    GateType,
    truth_table,
)

ERROR = (1.0, 0.0, 0.0, 0.0)  # pure a
ERROR_BAR = (0.0, 1.0, 0.0, 0.0)  # pure ā


def off(p1):
    return (0.0, 0.0, 1.0 - p1, p1)


class TestPaperWorkedValues:
    """Every intermediate value of the paper's Figure 1 example, rule by rule."""

    def test_not_gate_E(self):
        assert not_rule([ERROR]) == (0.0, 1.0, 0.0, 0.0)

    def test_and_gate_D(self):
        pa, pa_bar, p0, p1 = and_rule([ERROR, off(0.2)])
        assert pa == pytest.approx(0.2)
        assert pa_bar == pytest.approx(0.0)
        assert p0 == pytest.approx(0.8)
        assert p1 == pytest.approx(0.0)

    def test_and_gate_G(self):
        pa, pa_bar, p0, p1 = and_rule([ERROR_BAR, off(0.7)])
        assert pa_bar == pytest.approx(0.7)
        assert p0 == pytest.approx(0.3)

    def test_or_gate_H(self):
        d = (0.2, 0.0, 0.8, 0.0)
        g = (0.0, 0.7, 0.3, 0.0)
        pa, pa_bar, p0, p1 = or_rule([off(0.3), d, g])
        assert p0 == pytest.approx(0.168)
        assert pa == pytest.approx(0.042)
        assert pa_bar == pytest.approx(0.392)
        assert p1 == pytest.approx(0.398)


class TestClosedVsGeneric:
    GRID = [
        (1.0, 0.0, 0.0, 0.0),
        (0.0, 1.0, 0.0, 0.0),
        (0.0, 0.0, 1.0, 0.0),
        (0.0, 0.0, 0.0, 1.0),
        (0.25, 0.25, 0.25, 0.25),
        (0.5, 0.0, 0.3, 0.2),
        (0.0, 0.6, 0.1, 0.3),
        (0.1, 0.2, 0.3, 0.4),
    ]

    @pytest.mark.parametrize(
        "gate_type,rule",
        [
            (GateType.AND, and_rule),
            (GateType.OR, or_rule),
            (GateType.NAND, nand_rule),
            (GateType.NOR, nor_rule),
            (GateType.XOR, xor_rule),
            (GateType.XNOR, xnor_rule),
        ],
    )
    def test_two_and_three_input_gates(self, gate_type, rule):
        for arity in (2, 3):
            table = truth_table(gate_type, arity)
            for combo in itertools.product(self.GRID, repeat=arity):
                expected = truth_table_rule(table, combo)
                got = rule(combo)
                for e, g in zip(expected, got):
                    assert g == pytest.approx(e, abs=1e-12), (gate_type, combo)

    @pytest.mark.parametrize(
        "gate_type,rule", [(GateType.NOT, not_rule), (GateType.BUF, buf_rule)]
    )
    def test_unary_gates(self, gate_type, rule):
        table = truth_table(gate_type, 1)
        for value in self.GRID:
            assert truth_table_rule(table, [value]) == pytest.approx(rule([value]))


class TestSemantics:
    def test_xor_cancels_same_polarity_errors(self):
        # a XOR a = 0: the error disappears, output is a constant.
        pa, pa_bar, p0, p1 = xor_rule([ERROR, ERROR])
        assert (pa, pa_bar) == (0.0, 0.0)
        assert p0 == pytest.approx(1.0)

    def test_xor_opposite_polarities_make_constant_one(self):
        pa, pa_bar, p0, p1 = xor_rule([ERROR, ERROR_BAR])
        assert p1 == pytest.approx(1.0)

    def test_and_blocks_on_controlling_zero(self):
        pa, pa_bar, p0, p1 = and_rule([ERROR, off(0.0)])
        assert p0 == pytest.approx(1.0)

    def test_or_blocks_on_controlling_one(self):
        pa, pa_bar, p0, p1 = or_rule([ERROR, off(1.0)])
        assert p1 == pytest.approx(1.0)

    def test_and_of_a_and_abar_is_zero(self):
        pa, pa_bar, p0, p1 = and_rule([ERROR, ERROR_BAR])
        assert p0 == pytest.approx(1.0)

    def test_off_path_inputs_never_create_error(self):
        for rule in (and_rule, or_rule, xor_rule, nand_rule, nor_rule):
            pa, pa_bar, p0, p1 = rule([off(0.3), off(0.8)])
            assert pa == 0.0 and pa_bar == 0.0
            assert p0 + p1 == pytest.approx(1.0)

    def test_nand_is_not_of_and(self):
        inputs = [(0.3, 0.1, 0.4, 0.2), off(0.6)]
        assert nand_rule(inputs) == pytest.approx(not_rule([and_rule(inputs)]))

    def test_mux_generic_rule(self):
        # Error on the select line with equal data SPs still propagates
        # whenever the two data inputs differ.
        table = truth_table(GateType.MUX, 3)
        pa, pa_bar, p0, p1 = truth_table_rule(table, [ERROR, off(0.5), off(0.5)])
        assert pa + pa_bar == pytest.approx(0.5)  # P(data differ) = 0.5

    def test_merge_polarity(self):
        assert merge_polarity((0.1, 0.2, 0.3, 0.4)) == (
            pytest.approx(0.3), 0.0, 0.3, 0.4,
        )


class TestDispatch:
    def test_rule_for_code(self):
        assert rule_for_code(CODE_AND) is and_rule

    def test_non_combinational_code_rejected(self):
        with pytest.raises(AnalysisError):
            rule_for_code(CODE_DFF)

    def test_propagate_values_wrapper(self):
        result = propagate_values(
            GateType.AND, [EPPValue.error_site(), EPPValue.off_path(0.2)]
        )
        assert result.pa == pytest.approx(0.2)
        assert result.p0 == pytest.approx(0.8)

    def test_propagate_values_rejects_dff(self):
        with pytest.raises(AnalysisError):
            propagate_values(GateType.DFF, [EPPValue.error_site()])

    def test_truth_table_size_mismatch(self):
        with pytest.raises(AnalysisError):
            truth_table_rule((0, 1), [ERROR, ERROR])
