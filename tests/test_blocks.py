"""Structured blocks: functional correctness against integer arithmetic."""

import pytest

from repro.errors import NetlistError
from repro.netlist.blocks import (
    array_multiplier,
    carry_lookahead_adder,
    johnson_counter,
    lfsr,
    shift_register,
)
from repro.netlist.library import ripple_carry_adder
from repro.netlist.validate import validate_circuit
from repro.sim.logic_sim import simulate_sequential


class TestCarryLookahead:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_adds_exhaustively(self, width):
        circuit = carry_lookahead_adder(width)
        for a in range(1 << width):
            for b in range(1 << width):
                assignment = {}
                for i in range(width):
                    assignment[f"a{i}"] = (a >> i) & 1
                    assignment[f"b{i}"] = (b >> i) & 1
                values = circuit.evaluate(assignment)
                total = sum(values[f"s{i}"] << i for i in range(width))
                total += values["cout"] << width
                assert total == a + b, (a, b)

    def test_equivalent_to_ripple_adder(self):
        width = 5
        cla = carry_lookahead_adder(width)
        rca = ripple_carry_adder(width)
        for a, b in [(0, 0), (31, 31), (21, 13), (7, 25), (16, 16)]:
            assignment = {}
            for i in range(width):
                assignment[f"a{i}"] = (a >> i) & 1
                assignment[f"b{i}"] = (b >> i) & 1
            cla_values = cla.evaluate(assignment)
            rca_values = rca.evaluate(assignment)
            for i in range(width):
                assert cla_values[f"s{i}"] == rca_values[f"s{i}"], (a, b, i)
            assert cla_values["cout"] == rca_values[f"c{width-1}"]

    def test_depth_is_shallow(self):
        # Two-level carry logic: depth grows slowly, unlike a ripple chain.
        assert carry_lookahead_adder(8).depth() < ripple_carry_adder(8).depth()

    def test_validates(self):
        assert validate_circuit(carry_lookahead_adder(6)).ok

    def test_bad_width(self):
        with pytest.raises(NetlistError):
            carry_lookahead_adder(0)


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_multiplies_exhaustively(self, width):
        circuit = array_multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                assignment = {}
                for i in range(width):
                    assignment[f"a{i}"] = (a >> i) & 1
                    assignment[f"b{i}"] = (b >> i) & 1
                values = circuit.evaluate(assignment)
                product = sum(
                    values[f"m{k}"] << k for k in range(2 * width)
                )
                assert product == a * b, (a, b)

    def test_width4_spot_checks(self):
        circuit = array_multiplier(4)
        for a, b in [(15, 15), (9, 7), (12, 5), (1, 13), (0, 11)]:
            assignment = {}
            for i in range(4):
                assignment[f"a{i}"] = (a >> i) & 1
                assignment[f"b{i}"] = (b >> i) & 1
            values = circuit.evaluate(assignment)
            product = sum(values[f"m{k}"] << k for k in range(8))
            assert product == a * b

    def test_structure_is_deep_and_reconvergent(self):
        from repro.netlist.stats import circuit_stats

        stats = circuit_stats(array_multiplier(4))
        assert stats.depth >= 10
        assert stats.n_reconvergent_stems > 0

    def test_validates(self):
        assert validate_circuit(array_multiplier(3)).ok


class TestLfsr:
    def test_maximal_period_width4(self):
        # taps (4, 3) are maximal: period 2^4 - 1 = 15 from any nonzero state.
        circuit = lfsr(4)
        state = {"q0": 1, "q1": 0, "q2": 0, "q3": 0}
        trace = simulate_sequential(
            circuit, lambda _: {"en": 1}, cycles=16, width=1, initial_state=state
        )
        seen = []
        for t in range(16):
            seen.append(tuple(trace.word(t, f"q{i}") for i in range(4)))
        assert len(set(seen[:15])) == 15
        assert seen[15] == seen[0]

    def test_all_zero_state_is_fixed_point(self):
        circuit = lfsr(4)
        trace = simulate_sequential(circuit, lambda _: {"en": 1}, cycles=3, width=1)
        for t in range(3):
            assert all(trace.word(t, f"q{i}") == 0 for i in range(4))

    def test_tap_validation(self):
        with pytest.raises(NetlistError):
            lfsr(4, taps=(4,))
        with pytest.raises(NetlistError):
            lfsr(4, taps=(4, 9))
        with pytest.raises(NetlistError):
            lfsr(1)


class TestShiftRegister:
    def test_shifts_serial_pattern(self):
        circuit = shift_register(4)
        pattern = [1, 0, 1, 1, 0, 0, 1]
        trace = simulate_sequential(
            circuit, [{"sin": bit} for bit in pattern], cycles=len(pattern), width=1
        )
        # After k cycles, q{width-1} holds the bit injected k cycles ago.
        for t in range(4, len(pattern)):
            assert trace.word(t, "q0") == pattern[t - 4]

    def test_validates(self):
        assert validate_circuit(shift_register(5)).ok


class TestJohnson:
    def test_period_is_twice_width(self):
        width = 4
        circuit = johnson_counter(width)
        trace = simulate_sequential(circuit, lambda _: {}, cycles=2 * width + 1, width=1)
        states = [
            tuple(trace.word(t, f"q{i}") for i in range(width))
            for t in range(2 * width + 1)
        ]
        assert len(set(states[: 2 * width])) == 2 * width
        assert states[2 * width] == states[0]

    def test_walking_ones_shape(self):
        circuit = johnson_counter(3)
        trace = simulate_sequential(circuit, lambda _: {}, cycles=4, width=1)
        assert [trace.word(1, f"q{i}") for i in range(3)] == [1, 0, 0]
        assert [trace.word(2, f"q{i}") for i in range(3)] == [1, 1, 0]
        assert [trace.word(3, f"q{i}") for i in range(3)] == [1, 1, 1]
