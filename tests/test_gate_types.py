"""Gate alphabet: arity, properties, and the three evaluation forms."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.gate_types import (
    GATE_CODES,
    CODE_TO_TYPE,
    GateType,
    check_arity,
    eval_gate_bool,
    eval_gate_word,
    truth_table,
)

_LOGIC_TYPES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestProperties:
    def test_sequential_flag(self):
        assert GateType.DFF.is_sequential
        assert not GateType.AND.is_sequential

    def test_source_flags(self):
        for gate_type in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            assert gate_type.is_source
            assert not gate_type.is_combinational

    def test_combinational_flags(self):
        for gate_type in _LOGIC_TYPES + [GateType.NOT, GateType.BUF, GateType.MUX, GateType.MAJ]:
            assert gate_type.is_combinational

    def test_controlling_values(self):
        assert GateType.AND.controlling_value == 0
        assert GateType.NAND.controlling_value == 0
        assert GateType.OR.controlling_value == 1
        assert GateType.NOR.controlling_value == 1
        assert GateType.XOR.controlling_value is None
        assert GateType.MUX.controlling_value is None

    def test_gate_codes_are_bijective(self):
        assert len(set(GATE_CODES.values())) == len(GATE_CODES)
        for gate_type, code in GATE_CODES.items():
            assert CODE_TO_TYPE[code] is gate_type


class TestArity:
    def test_not_requires_exactly_one(self):
        check_arity(GateType.NOT, 1)
        with pytest.raises(NetlistError, match="NOT"):
            check_arity(GateType.NOT, 2)

    def test_mux_requires_three(self):
        check_arity(GateType.MUX, 3)
        with pytest.raises(NetlistError):
            check_arity(GateType.MUX, 2)

    def test_maj_requires_odd(self):
        check_arity(GateType.MAJ, 3)
        check_arity(GateType.MAJ, 5)
        with pytest.raises(NetlistError, match="odd"):
            check_arity(GateType.MAJ, 4)

    def test_inputs_take_nothing(self):
        with pytest.raises(NetlistError):
            check_arity(GateType.INPUT, 1)

    def test_and_accepts_wide_fanin(self):
        check_arity(GateType.AND, 17)


class TestEvalBool:
    def test_and_or(self):
        assert eval_gate_bool(GateType.AND, [1, 1, 1]) == 1
        assert eval_gate_bool(GateType.AND, [1, 0, 1]) == 0
        assert eval_gate_bool(GateType.OR, [0, 0, 0]) == 0
        assert eval_gate_bool(GateType.OR, [0, 1, 0]) == 1

    def test_inverting_gates(self):
        assert eval_gate_bool(GateType.NAND, [1, 1]) == 0
        assert eval_gate_bool(GateType.NOR, [0, 0]) == 1
        assert eval_gate_bool(GateType.NOT, [0]) == 1

    def test_xor_parity(self):
        assert eval_gate_bool(GateType.XOR, [1, 1, 1]) == 1
        assert eval_gate_bool(GateType.XOR, [1, 1]) == 0
        assert eval_gate_bool(GateType.XNOR, [1, 0]) == 0

    def test_mux_selects(self):
        # MUX(sel, a, b): a when sel=0, b when sel=1
        assert eval_gate_bool(GateType.MUX, [0, 1, 0]) == 1
        assert eval_gate_bool(GateType.MUX, [1, 1, 0]) == 0

    def test_maj_votes(self):
        assert eval_gate_bool(GateType.MAJ, [1, 1, 0]) == 1
        assert eval_gate_bool(GateType.MAJ, [1, 0, 0]) == 0
        assert eval_gate_bool(GateType.MAJ, [1, 1, 0, 0, 1]) == 1

    def test_constants(self):
        assert eval_gate_bool(GateType.CONST0, []) == 0
        assert eval_gate_bool(GateType.CONST1, []) == 1

    def test_dff_passes_through(self):
        assert eval_gate_bool(GateType.DFF, [1]) == 1

    def test_input_cannot_evaluate(self):
        with pytest.raises(NetlistError):
            eval_gate_bool(GateType.INPUT, [])


class TestTruthTable:
    def test_and2(self):
        assert truth_table(GateType.AND, 2) == (0, 0, 0, 1)

    def test_xor2(self):
        assert truth_table(GateType.XOR, 2) == (0, 1, 1, 0)

    def test_mux_table_is_consistent_with_eval(self):
        table = truth_table(GateType.MUX, 3)
        for assignment in range(8):
            bits = [(assignment >> k) & 1 for k in range(3)]
            assert table[assignment] == eval_gate_bool(GateType.MUX, bits)

    def test_size(self):
        assert len(truth_table(GateType.MAJ, 5)) == 32


@pytest.mark.parametrize("gate_type", _LOGIC_TYPES + [GateType.MUX, GateType.MAJ])
def test_word_eval_matches_bool_eval(gate_type):
    """Bit-parallel words agree with per-bit boolean evaluation."""
    arity = 3
    width = 1 << arity
    mask = (1 << width) - 1
    # Input k carries its truth-table column pattern.
    words = []
    for k in range(arity):
        word = 0
        for position in range(width):
            if (position >> k) & 1:
                word |= 1 << position
        words.append(word)
    out = eval_gate_word(gate_type, words, mask)
    for position in range(width):
        bits = [(position >> k) & 1 for k in range(arity)]
        assert (out >> position) & 1 == eval_gate_bool(gate_type, bits)


@settings(max_examples=60, deadline=None)
@given(
    n_inputs=st.sampled_from([3, 5, 7]),
    data=st.data(),
)
def test_majority_word_matches_bool(n_inputs, data):
    """Bit-sliced majority equals per-position counting for random words."""
    width = 32
    mask = (1 << width) - 1
    words = [
        data.draw(st.integers(min_value=0, max_value=mask)) for _ in range(n_inputs)
    ]
    out = eval_gate_word(GateType.MAJ, words, mask)
    for position in range(width):
        bits = [(word >> position) & 1 for word in words]
        assert (out >> position) & 1 == eval_gate_bool(GateType.MAJ, bits)
