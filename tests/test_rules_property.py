"""Property-based tests for the EPP rule algebra (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import (
    and_rule,
    nand_rule,
    nor_rule,
    not_rule,
    or_rule,
    truth_table_rule,
    xnor_rule,
    xor_rule,
)
from repro.netlist.gate_types import GateType, truth_table


@st.composite
def prob4(draw):
    """A random valid four-valued vector (components sum to 1)."""
    raw = [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(4)]
    total = sum(raw)
    if total == 0.0:
        return (1.0, 0.0, 0.0, 0.0)
    return tuple(component / total for component in raw)


_CLOSED = {
    GateType.AND: and_rule,
    GateType.OR: or_rule,
    GateType.NAND: nand_rule,
    GateType.NOR: nor_rule,
    GateType.XOR: xor_rule,
    GateType.XNOR: xnor_rule,
}


@settings(max_examples=150, deadline=None)
@given(
    gate_type=st.sampled_from(sorted(_CLOSED, key=lambda g: g.value)),
    inputs=st.lists(prob4(), min_size=1, max_size=4),
)
def test_closed_form_equals_generic_rule(gate_type, inputs):
    """The paper's closed forms agree with exhaustive state enumeration."""
    table = truth_table(gate_type, len(inputs))
    expected = truth_table_rule(table, inputs)
    got = _CLOSED[gate_type](inputs)
    for e, g in zip(expected, got):
        assert math.isclose(e, g, abs_tol=1e-9)


@settings(max_examples=150, deadline=None)
@given(
    gate_type=st.sampled_from(sorted(_CLOSED, key=lambda g: g.value)),
    inputs=st.lists(prob4(), min_size=1, max_size=4),
)
def test_output_is_a_probability_vector(gate_type, inputs):
    result = _CLOSED[gate_type](inputs)
    assert all(-1e-9 <= component <= 1.0 + 1e-9 for component in result)
    assert math.isclose(sum(result), 1.0, abs_tol=1e-6)


@settings(max_examples=100, deadline=None)
@given(value=prob4())
def test_not_is_an_involution(value):
    assert not_rule([not_rule([value])]) == value


@settings(max_examples=100, deadline=None)
@given(inputs=st.lists(prob4(), min_size=2, max_size=4))
def test_and_error_bounded_by_input_error(inputs):
    """AND can only block or pass an error, never amplify it beyond the
    probability that *some* input carried it."""
    pa, pa_bar, p0, p1 = and_rule(inputs)
    p_any_error = 1.0 - math.prod(1.0 - (x[0] + x[1]) for x in inputs)
    assert pa + pa_bar <= p_any_error + 1e-9


@settings(max_examples=100, deadline=None)
@given(inputs=st.lists(prob4(), min_size=2, max_size=3))
def test_demorgan_and_nand(inputs):
    """NAND == NOT(AND) as distributions."""
    lhs = nand_rule(inputs)
    rhs = not_rule([and_rule(inputs)])
    for l, r in zip(lhs, rhs):
        assert math.isclose(l, r, abs_tol=1e-12)


@settings(max_examples=100, deadline=None)
@given(inputs=st.lists(prob4(), min_size=2, max_size=3), data=st.data())
def test_xor_is_commutative(inputs, data):
    permutation = data.draw(st.permutations(inputs))
    lhs = xor_rule(inputs)
    rhs = xor_rule(permutation)
    for l, r in zip(lhs, rhs):
        assert math.isclose(l, r, abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    off_probs=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=3
    )
)
def test_off_path_only_inputs_stay_off_path(off_probs):
    """A gate whose inputs carry no error can never output one."""
    inputs = [(0.0, 0.0, 1.0 - p, p) for p in off_probs]
    for gate_type, rule in _CLOSED.items():
        pa, pa_bar, p0, p1 = rule(inputs)
        assert pa == 0.0 and pa_bar == 0.0, gate_type


@settings(max_examples=60, deadline=None)
@given(inputs=st.lists(prob4(), min_size=3, max_size=3))
def test_generic_rule_matches_maj_semantics(inputs):
    """Generic MAJ rule output is a valid distribution and error-consistent."""
    table = truth_table(GateType.MAJ, 3)
    pa, pa_bar, p0, p1 = truth_table_rule(table, inputs)
    assert math.isclose(pa + pa_bar + p0 + p1, 1.0, abs_tol=1e-9)
    p_any_error = 1.0 - math.prod(1.0 - (x[0] + x[1]) for x in inputs)
    assert pa + pa_bar <= p_any_error + 1e-9
