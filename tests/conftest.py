"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.netlist.library import c17, figure1_circuit, s27


@pytest.fixture
def fig1():
    return figure1_circuit()


@pytest.fixture
def s27_circuit():
    return s27()


@pytest.fixture
def c17_circuit():
    return c17()
