"""Ground-truth helpers shared across test modules."""

from __future__ import annotations

from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import exhaustive_words


def exhaustive_p_sensitized(circuit: Circuit, site: str) -> float:
    """Ground-truth P_sensitized by enumerating every input vector.

    Only valid for combinational circuits with <= 24 inputs.  Counts the
    fraction of vectors for which flipping ``site`` changes at least one
    observable sink — the definition the EPP method approximates.
    """
    injector = FaultInjector(circuit)
    words, width = exhaustive_words(circuit.inputs)
    good = injector.simulator.run(words, width)
    return injector.detection_count(good, site, width) / width


def exhaustive_all_sites(circuit: Circuit) -> dict[str, float]:
    """Ground-truth P_sensitized for every combinational gate site."""
    injector = FaultInjector(circuit)
    words, width = exhaustive_words(circuit.inputs)
    good = injector.simulator.run(words, width)
    return {
        site: injector.detection_count(good, site, width) / width
        for site in circuit.gates
    }


def build_chain(gate_types: list[GateType], name: str = "chain") -> Circuit:
    """A single path x -> g1 -> g2 -> ... -> PO (fanout-free).

    Multi-input gate types get a dedicated primary input as their side pin,
    keeping the chain free of reconvergence.
    """
    circuit = Circuit(name)
    circuit.add_input("x")
    previous = "x"
    for index, gate_type in enumerate(gate_types):
        node = f"n{index}"
        if gate_type in (GateType.NOT, GateType.BUF):
            circuit.add_gate(node, gate_type, [previous])
        else:
            side = f"s{index}"
            circuit.add_input(side)
            circuit.add_gate(node, gate_type, [previous, side])
        previous = node
    circuit.mark_output(previous)
    return circuit
