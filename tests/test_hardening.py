"""Hardening flows: selective hardening curves and TMR evaluation."""

import pytest

from repro.core.analysis import SERAnalyzer
from repro.errors import ConfigError
from repro.netlist.library import c17, s27
from repro.ser.hardening import (
    evaluate_tmr,
    selective_hardening_curve,
)


@pytest.fixture(scope="module")
def s27_report():
    return SERAnalyzer(s27()).analyze()


class TestSelectiveHardening:
    def test_fit_decreases_monotonically(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=10.0)
        fits = [step.total_fit for step in curve.steps]
        assert fits == sorted(fits, reverse=True)
        assert curve.baseline_fit >= fits[0]

    def test_greedy_order_matches_ranking(self, s27_report):
        curve = selective_hardening_curve(s27_report)
        ranked = [entry.node for entry in s27_report.ranked()]
        assert list(curve.steps[2].hardened_nodes) == ranked[:3]

    def test_full_hardening_limit(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=10.0)
        final = curve.steps[-1]
        assert final.total_fit == pytest.approx(curve.baseline_fit / 10.0)
        assert final.fit_reduction_pct == pytest.approx(90.0)

    def test_reduction_percentages_consistent(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=4.0)
        for step in curve.steps:
            expected = 100.0 * (curve.baseline_fit - step.total_fit) / curve.baseline_fit
            assert step.fit_reduction_pct == pytest.approx(expected)

    def test_pareto_shape_front_loaded(self, s27_report):
        """Hardening the top node cuts more FIT than hardening the last one."""
        curve = selective_hardening_curve(s27_report)
        gains = [curve.baseline_fit - curve.steps[0].total_fit]
        for previous, current in zip(curve.steps, curve.steps[1:]):
            gains.append(previous.total_fit - current.total_fit)
        assert gains[0] >= gains[-1]

    def test_budget_and_target_queries(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=10.0)
        assert curve.step_for_budget(3).n_hardened == 3
        step = curve.nodes_for_target(50.0)
        assert step is not None
        assert step.fit_reduction_pct >= 50.0
        assert curve.nodes_for_target(99.9) is None  # 10x hardening caps at 90%

    def test_budget_of_zero_rejected(self, s27_report):
        curve = selective_hardening_curve(s27_report)
        with pytest.raises(ConfigError):
            curve.step_for_budget(0)

    def test_max_nodes_truncates(self, s27_report):
        curve = selective_hardening_curve(s27_report, max_nodes=2)
        assert len(curve.steps) == 2

    def test_strength_validation(self, s27_report):
        with pytest.raises(ConfigError):
            selective_hardening_curve(s27_report, strength_factor=1.0)


class TestTMR:
    def test_tmr_masks_interior_faults(self):
        comparison = evaluate_tmr(c17(), n_vectors=2048, seed=3)
        # Fault injection shows (near-)total masking of single-replica SEUs.
        assert comparison.injection_mean_p_sens == pytest.approx(0.0, abs=1e-9)
        assert comparison.original_mean_p_sens > 0.3

    def test_epp_cannot_see_cross_replica_correlation(self):
        """Documented limitation: EPP treats the other replicas as
        independent off-path signals and wrongly reports vulnerability."""
        comparison = evaluate_tmr(c17(), n_vectors=1024, seed=3)
        assert comparison.epp_mean_p_sens_tmr > 0.1
        assert comparison.epp_mean_p_sens_tmr > comparison.injection_mean_p_sens

    def test_site_cap(self):
        comparison = evaluate_tmr(c17(), n_vectors=256, seed=1, max_sites=2)
        assert comparison.n_sites == 2
