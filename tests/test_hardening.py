"""Hardening flows: selective hardening curves and TMR evaluation."""

import pytest

from repro.core.analysis import SERAnalyzer
from repro.errors import ConfigError
from repro.netlist.library import c17, s27
from repro.ser.hardening import (
    evaluate_tmr,
    optimize_hardening,
    selective_hardening_curve,
)


@pytest.fixture(scope="module")
def s27_report():
    return SERAnalyzer(s27()).analyze()


class TestSelectiveHardening:
    def test_fit_decreases_monotonically(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=10.0)
        fits = [step.total_fit for step in curve.steps]
        assert fits == sorted(fits, reverse=True)
        assert curve.baseline_fit >= fits[0]

    def test_greedy_order_matches_ranking(self, s27_report):
        curve = selective_hardening_curve(s27_report)
        ranked = [entry.node for entry in s27_report.ranked()]
        assert list(curve.steps[2].hardened_nodes) == ranked[:3]

    def test_full_hardening_limit(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=10.0)
        final = curve.steps[-1]
        assert final.total_fit == pytest.approx(curve.baseline_fit / 10.0)
        assert final.fit_reduction_pct == pytest.approx(90.0)

    def test_reduction_percentages_consistent(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=4.0)
        for step in curve.steps:
            expected = 100.0 * (curve.baseline_fit - step.total_fit) / curve.baseline_fit
            assert step.fit_reduction_pct == pytest.approx(expected)

    def test_pareto_shape_front_loaded(self, s27_report):
        """Hardening the top node cuts more FIT than hardening the last one."""
        curve = selective_hardening_curve(s27_report)
        gains = [curve.baseline_fit - curve.steps[0].total_fit]
        for previous, current in zip(curve.steps, curve.steps[1:]):
            gains.append(previous.total_fit - current.total_fit)
        assert gains[0] >= gains[-1]

    def test_budget_and_target_queries(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=10.0)
        assert curve.step_for_budget(3).n_hardened == 3
        step = curve.nodes_for_target(50.0)
        assert step is not None
        assert step.fit_reduction_pct >= 50.0
        assert curve.nodes_for_target(99.9) is None  # 10x hardening caps at 90%

    def test_budget_of_zero_rejected(self, s27_report):
        curve = selective_hardening_curve(s27_report)
        with pytest.raises(ConfigError):
            curve.step_for_budget(0)

    def test_max_nodes_truncates(self, s27_report):
        curve = selective_hardening_curve(s27_report, max_nodes=2)
        assert len(curve.steps) == 2

    def test_strength_validation(self, s27_report):
        with pytest.raises(ConfigError):
            selective_hardening_curve(s27_report, strength_factor=1.0)


class TestCurveEdgeCases:
    """The satellite sweep: budget/target queries at the boundaries."""

    def test_budget_below_smallest_step_names_the_floor(self, s27_report):
        curve = selective_hardening_curve(s27_report)
        # Steps grow one node at a time, so the smallest step is 1 and
        # only a non-positive budget can be infeasible -- which the
        # explicit validation rejects first.
        with pytest.raises(ConfigError, match="budget"):
            curve.step_for_budget(0)

    def test_budget_on_empty_curve_says_so(self):
        from repro.ser.hardening import HardeningCurve

        curve = HardeningCurve("empty", 10.0, 0.0)
        with pytest.raises(ConfigError, match="curve is empty"):
            curve.step_for_budget(5)

    def test_budget_tie_returns_cheapest_step(self, s27_report):
        """Deeper steps that only add zero-gain nodes must not win ties."""
        from repro.ser.hardening import HardeningStep

        curve = selective_hardening_curve(s27_report, strength_factor=10.0)
        plateau = curve.steps[-1]
        curve.steps.append(
            HardeningStep(
                n_hardened=plateau.n_hardened + 1,
                hardened_nodes=plateau.hardened_nodes + ("dead_gate",),
                total_fit=plateau.total_fit,
                fit_reduction_pct=plateau.fit_reduction_pct,
                area_cost=plateau.area_cost + 9.0,
            )
        )
        best = curve.step_for_budget(plateau.n_hardened + 1)
        assert best.n_hardened == plateau.n_hardened

    def test_target_of_zero_is_the_empty_step(self, s27_report):
        curve = selective_hardening_curve(s27_report)
        step = curve.nodes_for_target(0.0)
        assert step.n_hardened == 0
        assert step.hardened_nodes == ()
        assert step.total_fit == pytest.approx(curve.baseline_fit)
        assert curve.nodes_for_target(-5.0).n_hardened == 0

    def test_target_of_one_hundred_pct_unreachable(self, s27_report):
        curve = selective_hardening_curve(s27_report, strength_factor=10.0)
        assert curve.nodes_for_target(100.0) is None

    def test_monotone_nondecreasing_reduction(self, s27_report):
        curve = selective_hardening_curve(s27_report)
        reductions = [step.fit_reduction_pct for step in curve.steps]
        assert reductions == sorted(reductions)


class TestOptimizeHardening:
    def test_upsize_plan_reduces_fit_within_budget(self):
        analyzer = SERAnalyzer(s27())
        plan = optimize_hardening(analyzer, area_budget=30.0, strength_factor=10.0)
        assert plan.accepted_nodes
        assert plan.final_fit < plan.baseline_fit
        assert plan.area_used <= plan.area_budget
        # Upsizing is metadata-only: no columns should have been re-swept.
        assert all(
            step.dirty_sites == 0 for step in plan.steps if step.accepted
        )
        # Greedy order: accepted nodes follow the baseline ranking.
        ranking = [entry.node for entry in analyzer.analyze().ranked()]
        assert list(plan.accepted_nodes) == ranking[: len(plan.accepted_nodes)]

    def test_tmr_steps_are_honestly_rejected_by_epp(self):
        """EPP cannot credit cross-replica masking (documented limitation),
        so local-TMR trials raise the *estimated* FIT and the optimizer
        must reject them rather than report phantom gains."""
        analyzer = SERAnalyzer(s27())
        plan = optimize_hardening(
            analyzer, area_budget=30.0, action="tmr", max_steps=3
        )
        assert plan.steps, "candidates should have been evaluated"
        assert not plan.accepted_nodes
        assert plan.final_fit == pytest.approx(plan.baseline_fit)
        # The structural trials exercised the delta machinery for real.
        assert all(step.dirty_sites > 0 for step in plan.steps)

    def test_max_steps_bounds_evaluations(self):
        analyzer = SERAnalyzer(s27())
        plan = optimize_hardening(analyzer, area_budget=100.0, max_steps=2)
        assert len(plan.steps) == 2

    def test_budget_validation(self):
        analyzer = SERAnalyzer(s27())
        with pytest.raises(ConfigError, match="area_budget"):
            optimize_hardening(analyzer, area_budget=0.0)
        with pytest.raises(ConfigError, match="action"):
            optimize_hardening(analyzer, area_budget=5.0, action="pray")
        with pytest.raises(ConfigError, match="strength_factor"):
            optimize_hardening(analyzer, area_budget=5.0, strength_factor=1.0)

    def test_plan_format_smoke(self):
        analyzer = SERAnalyzer(s27())
        plan = optimize_hardening(analyzer, area_budget=9.0)
        text = plan.format()
        assert "hardening plan for s27" in text
        assert "baseline" in text and "accepted" in text


class TestTMR:
    def test_tmr_masks_interior_faults(self):
        comparison = evaluate_tmr(c17(), n_vectors=2048, seed=3)
        # Fault injection shows (near-)total masking of single-replica SEUs.
        assert comparison.injection_mean_p_sens == pytest.approx(0.0, abs=1e-9)
        assert comparison.original_mean_p_sens > 0.3

    def test_epp_cannot_see_cross_replica_correlation(self):
        """Documented limitation: EPP treats the other replicas as
        independent off-path signals and wrongly reports vulnerability."""
        comparison = evaluate_tmr(c17(), n_vectors=1024, seed=3)
        assert comparison.epp_mean_p_sens_tmr > 0.1
        assert comparison.epp_mean_p_sens_tmr > comparison.injection_mean_p_sens

    def test_site_cap(self):
        comparison = evaluate_tmr(c17(), n_vectors=256, seed=1, max_sites=2)
        assert comparison.n_sites == 2
