"""Fault tolerance of the sharded EPP driver (PR 6).

Every recovery path is pinned against the *same* invariant: per-column
shard independence makes shards exactly re-runnable, so an analysis that
survived an injected worker crash, a wedged worker past its deadline, a
poisoned shared-memory export, or a mid-kernel exception must be
``np.array_equal`` — bit-identical, not approximately equal — to a clean
run.  The faults come from :mod:`repro.testing.faults`, a seeded
injector threaded into the worker pool's initializer, so the failure
schedule is deterministic run to run.

Test names deliberately carry "crash" / "poison": the CI fast job's
fault-injection smoke selects them with ``-k``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.analysis import SERAnalyzer
from repro.core.epp import EPPEngine
from repro.core.epp_shard import (
    _SHM_NAME_PREFIX,
    PickleFallback,
    ShardedEPPEngine,
    default_transport,
)
from repro.core.resilience import Deadline, FaultPolicy, ShardOutcome
from repro.errors import (
    AnalysisError,
    ConfigError,
    ReproError,
    ResilienceError,
    RetryBudgetExceededError,
    ShardTimeoutError,
    TransportError,
    WorkerCrashError,
)
from repro.netlist.generate import generate_iscas
from repro.testing import FaultInjector, FaultSpec, InjectedFault

shm_only = pytest.mark.skipif(
    default_transport() != "shm",
    reason="POSIX shared memory unavailable on this platform",
)


def chaos_backend(engine: EPPEngine, jobs: int = 2, **knobs) -> ShardedEPPEngine:
    """A sharded driver with the crossover guard disabled so worker
    processes are exercised even on circuits below the threshold."""
    backend = engine.sharded_backend(jobs=jobs, **knobs)
    backend.min_process_work = 0
    return backend


def repro_segments() -> set[str]:
    """The deterministically named worker segments currently in /dev/shm."""
    if not os.path.isdir("/dev/shm"):
        return set()
    return {
        name for name in os.listdir("/dev/shm")
        if name.startswith(_SHM_NAME_PREFIX)
    }


@pytest.fixture(scope="module")
def s953():
    engine = EPPEngine(generate_iscas("s953"))
    site_ids = [engine._cones.resolve(s) for s in engine.default_sites()]
    with chaos_backend(engine) as clean:
        reference = clean.p_sensitized_many(site_ids)
    return engine, site_ids, reference


# ------------------------------------------------------------------ policy


class TestFaultPolicy:
    def test_defaults_and_max_attempts(self):
        policy = FaultPolicy()
        assert policy.retries == 2
        assert policy.max_attempts == 3
        assert policy.on_failure == "retry"
        assert policy.shard_timeout is None
        assert policy.deadline is None

    def test_from_knobs_none_means_default(self):
        assert FaultPolicy.from_knobs() == FaultPolicy()
        assert FaultPolicy.from_knobs(retries=0).retries == 0
        assert FaultPolicy.from_knobs(shard_timeout=1.5).shard_timeout == 1.5
        assert FaultPolicy.from_knobs(on_failure="degrade").on_failure == "degrade"

    @pytest.mark.parametrize(
        "bad",
        [
            {"retries": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
            {"shard_timeout": 0.0},
            {"deadline": -1.0},
            {"on_failure": "panic"},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(AnalysisError):
            FaultPolicy(**bad)

    def test_backoff_deterministic_and_bounded(self):
        policy = FaultPolicy(backoff_base=0.05, backoff_factor=2.0,
                             backoff_max=0.3, jitter=0.25, seed=7)
        schedule = [policy.backoff_delay(3, attempt) for attempt in (1, 2, 3, 4)]
        again = [policy.backoff_delay(3, attempt) for attempt in (1, 2, 3, 4)]
        assert schedule == again  # a pure function of (policy, shard, attempt)
        # Exponential below the cap, capped (plus jitter) above it.
        assert 0.05 <= schedule[0] <= 0.05 * 1.25
        assert 0.10 <= schedule[1] <= 0.10 * 1.25
        assert all(delay <= 0.3 * 1.25 for delay in schedule)
        # Different shards jitter differently (no retry stampede).
        assert policy.backoff_delay(0, 1) != policy.backoff_delay(1, 1)

    def test_backoff_without_jitter_is_exact(self):
        policy = FaultPolicy(backoff_base=0.1, backoff_factor=3.0,
                             backoff_max=10.0, jitter=0.0)
        assert policy.backoff_delay(0, 1) == pytest.approx(0.1)
        assert policy.backoff_delay(0, 2) == pytest.approx(0.3)
        assert policy.backoff_delay(0, 3) == pytest.approx(0.9)

    def test_policy_and_knobs_mutually_exclusive(self, s953):
        engine, _, _ = s953
        with pytest.raises(AnalysisError, match="not both"):
            ShardedEPPEngine(
                engine.compiled, engine._sp,
                policy=FaultPolicy(), retries=1,
            )

    def test_deadline_countdown(self):
        unbounded = Deadline(None)
        assert unbounded.remaining() is None
        assert not unbounded.expired()
        expired = Deadline(1e-9)
        time.sleep(0.001)
        assert expired.expired()
        assert expired.remaining() == 0.0

    def test_deadline_clamps_negative_budget(self):
        # "Less than no time" reads as already expired: the clamp keeps
        # consumers doing their own budget arithmetic (the server's
        # queue accounting) from ever seeing a negative remainder.
        clamped = Deadline(-5.0)
        assert clamped.budget == 0.0
        assert clamped.expired()
        assert clamped.remaining() == 0.0

    @pytest.mark.parametrize(
        "bad",
        [
            {"shard_timeout": 0.0},
            {"shard_timeout": -1.0},
            {"deadline": 0.0},
            {"deadline": -2.5},
            {"retries": -1},
        ],
    )
    def test_from_knobs_rejects_bad_values_as_config_errors(self, bad):
        # The knob-resolution path rejects user-facing flag values with
        # ConfigError naming the flag (the constructor keeps raising
        # AnalysisError for programmatic misuse — see test_validation).
        with pytest.raises(ConfigError, match="--"):
            FaultPolicy.from_knobs(**bad)


# ---------------------------------------------------------------- injector


class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(AnalysisError, match="unknown fault kind"):
            FaultSpec(kind="meteor")
        with pytest.raises(AnalysisError, match="probability"):
            FaultSpec(kind="crash", probability=2.0)

    def test_exact_and_wildcard_matching(self):
        injector = FaultInjector(
            specs=(FaultSpec(kind="kernel_error", shard=2, attempt=1),)
        )
        assert injector.matching("kernel", 2, 1)
        assert not injector.matching("kernel", 2, 2)  # retry is clean
        assert not injector.matching("kernel", 1, 1)  # other shards clean
        assert not injector.matching("export", 2, 1)  # wrong stage
        anywhere = FaultInjector(
            specs=(FaultSpec(kind="shm_poison", shard=None, attempt=None),)
        )
        assert anywhere.matching("export", 5, 3)

    def test_probability_is_seeded(self):
        injector = FaultInjector(
            specs=(FaultSpec(kind="kernel_error", shard=None,
                             attempt=None, probability=0.5),),
            seed=42,
        )
        decisions = [bool(injector.matching("kernel", shard, 1))
                     for shard in range(32)]
        assert decisions == [bool(injector.matching("kernel", shard, 1))
                             for shard in range(32)]  # replayable
        assert any(decisions) and not all(decisions)  # a real coin

    def test_kernel_error_fires(self):
        injector = FaultInjector(specs=(FaultSpec(kind="kernel_error"),))
        with pytest.raises(InjectedFault):
            injector.fire("kernel", 0, 1)
        injector.fire("kernel", 0, 2)  # attempt 2: clean

    def test_injector_pickles(self):
        import pickle

        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=1),), seed=3
        )
        assert pickle.loads(pickle.dumps(injector)) == injector


# ------------------------------------------------------------- typed errors


class TestTypedErrors:
    def test_hierarchy(self):
        for cls in (WorkerCrashError, ShardTimeoutError, TransportError,
                    RetryBudgetExceededError):
            assert issubclass(cls, ResilienceError)
            assert issubclass(cls, AnalysisError)
            assert issubclass(cls, ReproError)

    def test_site_ids_truncated_in_message_complete_on_attribute(self):
        error = WorkerCrashError(
            "worker died", site_ids=tuple(range(10)), attempts=2,
            worker_pid=1234,
        )
        assert error.site_ids == tuple(range(10))
        assert "+6" in str(error)  # 4 shown, 6 elided
        assert "attempt 2" in str(error)
        assert "worker pid 1234" in str(error)

    def test_timeout_suffix(self):
        error = ShardTimeoutError("shard too slow", timeout=1.5)
        assert error.timeout == 1.5
        assert "after 1.5s" in str(error)


# ------------------------------------------------------- crash recovery


class TestWorkerCrashRecovery:
    def test_crash_recovers_bit_identical(self, s953):
        engine, site_ids, reference = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=1, attempt=1),)
        )
        before = repro_segments()
        with chaos_backend(engine, fault_injector=injector) as backend:
            recovered = backend.p_sensitized_many(site_ids)
            assert np.array_equal(reference, recovered)
            assert backend.stats["worker_crashes"] == 1
            assert backend.stats["respawns"] == 1
            assert backend.stats["retries"] >= 1
            # Exactly-once merge: one outcome per shard, no duplicates.
            outcomes = backend.last_outcomes
            assert sorted(o.shard for o in outcomes) == list(range(len(outcomes)))
            assert any(o.attempts > 1 for o in outcomes)
        assert repro_segments() <= before  # no orphaned segments

    def test_crash_mid_analyze_sites_recovers(self, s953):
        engine, site_ids, _ = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, attempt=1),)
        )
        with chaos_backend(engine) as clean:
            reference = clean.analyze_sites(site_ids)
        with chaos_backend(engine, fault_injector=injector) as backend:
            recovered = backend.analyze_sites(site_ids)
        assert list(reference) == list(recovered)
        for site, expected in reference.items():
            assert recovered[site].p_sensitized == expected.p_sensitized

    def test_crash_with_raise_policy_is_typed(self, s953):
        engine, site_ids, _ = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, attempt=1),)
        )
        with chaos_backend(
            engine, fault_injector=injector, on_failure="raise"
        ) as backend:
            with pytest.raises(WorkerCrashError) as info:
                backend.p_sensitized_many(site_ids)
            assert info.value.site_ids  # carries the shard's sites

    def test_crash_every_attempt_exhausts_budget(self, s953):
        engine, site_ids, _ = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=0, attempt=None),)
        )
        with chaos_backend(
            engine, fault_injector=injector, retries=1
        ) as backend:
            with pytest.raises(RetryBudgetExceededError) as info:
                backend.p_sensitized_many(site_ids)
            assert info.value.attempts == 2  # first try + one retry

    def test_pool_respawns_from_cached_payload(self, s953):
        """After a crash the next analysis reuses the engine — the pool
        rebuilds lazily from the cached payload, no re-pickling."""
        engine, site_ids, reference = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", shard=1, attempt=1),)
        )
        with chaos_backend(engine, fault_injector=injector) as backend:
            payload_before = backend.payload()
            backend.p_sensitized_many(site_ids)
            assert backend.payload() is payload_before
            again = backend.p_sensitized_many(site_ids)
            assert np.array_equal(reference, again)


# --------------------------------------------------- kernel-error retries


class TestKernelErrorRetry:
    def test_kernel_error_retried_bit_identical(self, s953):
        engine, site_ids, reference = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="kernel_error", shard=2, attempt=1),)
        )
        with chaos_backend(engine, fault_injector=injector) as backend:
            recovered = backend.p_sensitized_many(site_ids)
            assert np.array_equal(reference, recovered)
            assert backend.stats["shard_errors"] == 1
            assert backend.stats["retries"] == 1
            assert backend.stats["respawns"] == 0  # no pool break

    def test_raise_mode_fails_fast_with_original_error(self, s953):
        engine, site_ids, _ = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="kernel_error", shard=0, attempt=1),)
        )
        with chaos_backend(
            engine, fault_injector=injector, on_failure="raise"
        ) as backend:
            with pytest.raises(InjectedFault):
                backend.p_sensitized_many(site_ids)

    def test_degrade_finishes_in_process_bit_identical(self, s953):
        engine, site_ids, reference = s953
        injector = FaultInjector(  # shard 1 fails on *every* attempt
            specs=(FaultSpec(kind="kernel_error", shard=1, attempt=None),)
        )
        with chaos_backend(
            engine, fault_injector=injector, retries=1, on_failure="degrade"
        ) as backend:
            recovered = backend.p_sensitized_many(site_ids)
            assert np.array_equal(reference, recovered)
            assert backend.stats["degraded_shards"] == 1
            degraded = [o for o in backend.last_outcomes if o.degraded]
            assert len(degraded) == 1
            assert degraded[0].transport == "local"
            assert degraded[0].worker_pid is None

    def test_budget_exhaustion_raises_typed_error(self, s953):
        engine, site_ids, _ = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="kernel_error", shard=1, attempt=None),)
        )
        with chaos_backend(
            engine, fault_injector=injector, retries=1
        ) as backend:
            with pytest.raises(RetryBudgetExceededError) as info:
                backend.p_sensitized_many(site_ids)
            assert isinstance(info.value.__cause__, InjectedFault)


# ------------------------------------------------------ transport poison


class TestShmPoisonFallback:
    @shm_only
    def test_poisoned_export_falls_back_to_pickle(self, s953):
        """A failed shm export is not a failed shard: the worker demotes
        the already-computed arrays to the pickle channel, so there is no
        retry, no recomputation, and the result is bit-identical."""
        engine, site_ids, reference = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="shm_poison", shard=1, attempt=1),)
        )
        before = repro_segments()
        with chaos_backend(engine, fault_injector=injector) as backend:
            recovered = backend.p_sensitized_many(site_ids)
            assert np.array_equal(reference, recovered)
            assert backend.stats["transport_fallbacks"] == 1
            assert backend.stats["pickle_shards"] == 1
            assert backend.stats["retries"] == 0  # delivery, not failure
            assert backend.stats["shard_errors"] == 0
            fallbacks = [o for o in backend.last_outcomes
                         if o.transport == "pickle"]
            assert len(fallbacks) == 1 and fallbacks[0].attempts == 1
        assert repro_segments() <= before

    @shm_only
    def test_poison_everywhere_still_completes(self, s953):
        engine, site_ids, reference = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="shm_poison", shard=None, attempt=None),)
        )
        with chaos_backend(engine, fault_injector=injector) as backend:
            recovered = backend.p_sensitized_many(site_ids)
            assert np.array_equal(reference, recovered)
            assert backend.stats["shm_shards"] == 0
            assert backend.stats["transport_fallbacks"] == len(
                backend.last_outcomes
            )

    def test_pickle_fallback_wrapper_shape(self):
        wrapped = PickleFallback(payload=(1, 2, 3))
        assert wrapped.payload == (1, 2, 3)


# ------------------------------------------------------ deadlines / stalls


class TestDeadlines:
    def test_stalled_shard_times_out_and_recovers(self, s953):
        """A worker stalled far past the per-shard deadline: the wedged
        pool is respawned (the executor cannot kill one task) and the
        shard re-runs — attempt 2 is clean — bit-identical."""
        engine, site_ids, reference = s953
        injector = FaultInjector(
            specs=(FaultSpec(kind="stall", shard=0, attempt=1, stall_s=15.0),)
        )
        with chaos_backend(
            engine, fault_injector=injector, shard_timeout=0.5, retries=3
        ) as backend:
            started = time.monotonic()
            recovered = backend.p_sensitized_many(site_ids)
            elapsed = time.monotonic() - started
            assert np.array_equal(reference, recovered)
            assert backend.stats["shard_timeouts"] >= 1
            assert backend.stats["respawns"] >= 1
            assert elapsed < 10.0  # the deadline, not the stall, ruled

    def test_global_deadline_raises_typed_error(self, s953):
        engine, site_ids, _ = s953
        with chaos_backend(engine, deadline=1e-6) as backend:
            with pytest.raises(ShardTimeoutError, match="deadline expired"):
                backend.p_sensitized_many(site_ids)

    def test_global_deadline_degrades_bit_identical(self, s953):
        engine, site_ids, reference = s953
        with chaos_backend(
            engine, deadline=1e-6, on_failure="degrade"
        ) as backend:
            recovered = backend.p_sensitized_many(site_ids)
            assert np.array_equal(reference, recovered)
            assert backend.stats["degraded_shards"] == len(backend.last_outcomes)
            assert all(o.degraded for o in backend.last_outcomes)

    def test_degraded_analyze_sites_matches(self, s953):
        engine, site_ids, _ = s953
        with chaos_backend(engine) as clean:
            reference = clean.analyze_sites(site_ids)
        with chaos_backend(
            engine, deadline=1e-6, on_failure="degrade"
        ) as backend:
            degraded = backend.analyze_sites(site_ids)
        assert list(reference) == list(degraded)
        for site, expected in reference.items():
            assert degraded[site].p_sensitized == expected.p_sensitized


# ------------------------------------------------------- barrier timeouts


class TestBarrierTimeouts:
    def test_worker_stats_times_out_on_wedged_pool(self, s953):
        """The PR-5 hang: a wedged worker made worker_stats() block
        forever.  Now the barrier gives up and raises."""
        engine, _, _ = s953
        backend = chaos_backend(engine, jobs=1)
        try:
            pool = backend._ensure_pool()
            blocker = pool.submit(time.sleep, 2.0)  # wedge the only worker
            with pytest.raises(ShardTimeoutError, match="barrier"):
                backend.worker_stats(timeout=0.3)
            blocker.cancel()
        finally:
            backend.close()

    def test_warm_times_out_on_wedged_pool(self, s953):
        engine, _, _ = s953
        backend = chaos_backend(engine, jobs=1)
        try:
            pool = backend._ensure_pool()
            blocker = pool.submit(time.sleep, 2.0)
            with pytest.raises(ShardTimeoutError, match="warmup"):
                backend.warm(timeout=0.3)
            blocker.cancel()
        finally:
            backend.close()

    def test_healthy_pool_barriers_still_work(self, s953):
        engine, _, _ = s953
        with chaos_backend(engine, jobs=2) as backend:
            backend.warm(timeout=30.0)
            stats = backend.worker_stats(timeout=30.0)
            assert len(stats) == 2


# ----------------------------------------------------------- drain split


class _ExplodingFuture:
    """A future whose every method raises — the interpreter-shutdown
    shape where executor internals are already torn down."""

    def cancel(self):
        raise RuntimeError("interpreter is shutting down")

    def cancelled(self):
        raise RuntimeError("interpreter is shutting down")


class TestDrainSplit:
    def test_best_effort_drain_swallows_shutdown_races(self, s953):
        engine, _, _ = s953
        backend = chaos_backend(engine)
        backend._inflight.add(_ExplodingFuture())
        backend._drain_inflight_best_effort()  # must not raise
        assert not backend._inflight
        backend.close()

    def test_strict_drain_does_not_mask_errors(self, s953):
        """close() must surface what __del__ swallows — otherwise the
        shutdown tolerance would hide real shm leaks."""
        engine, _, _ = s953
        backend = chaos_backend(engine)
        backend._inflight.add(_ExplodingFuture())
        with pytest.raises(RuntimeError, match="shutting down"):
            backend._drain_inflight_strict()
        backend._inflight.clear()
        backend.close()

    @shm_only
    def test_close_mid_flight_reclaims_named_segments(self, s953):
        engine, site_ids, _ = s953
        backend = chaos_backend(engine)
        before = repro_segments()
        shards = [site_ids[:200], site_ids[200:]]
        results = backend._map_shards(shards, full=True)
        next(results)
        backend.close()
        assert repro_segments() <= before
        results.close()

    def test_close_is_idempotent(self, s953):
        engine, site_ids, reference = s953
        backend = chaos_backend(engine)
        assert np.array_equal(backend.p_sensitized_many(site_ids), reference)
        before = repro_segments()
        backend.close()
        backend.close()  # second close: no double-drain, no double-unlink
        assert repro_segments() <= before
        # The pool respawns on next use: close is teardown, not poison.
        assert np.array_equal(backend.p_sensitized_many(site_ids), reference)
        backend.close()

    @shm_only
    def test_concurrent_close_single_teardown(self, s953):
        """Racing closers (server drain + with-exit + finalizer) must
        serialize: in-flight segments are drained exactly once and no
        thread sees a half-torn pool."""
        import threading

        engine, site_ids, _ = s953
        for _ in range(3):  # a few rounds to give a real race a chance
            backend = chaos_backend(engine)
            shards = [site_ids[:200], site_ids[200:]]
            results = backend._map_shards(shards, full=True)
            next(results)  # leave one shard's result in flight
            before = repro_segments()
            barrier = threading.Barrier(6)
            errors = []

            def closer():
                try:
                    barrier.wait(timeout=10)
                    backend.close()
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=closer) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            assert all(not thread.is_alive() for thread in threads)
            assert repro_segments() <= before
            results.close()


# ------------------------------------------------------- knob threading


class TestKnobThreading:
    def test_engine_rejects_knobs_off_the_sharded_backend(self, s953):
        engine, _, _ = s953
        with pytest.raises(AnalysisError, match="sharded"):
            engine.analyze(backend="vector", retries=1)
        with pytest.raises(AnalysisError, match="sharded"):
            engine.analyze(backend="scalar", shard_timeout=1.0)

    def test_engine_cache_keyed_by_policy(self, s953):
        engine, _, _ = s953
        first = engine.sharded_backend(jobs=2, retries=1)
        assert first.policy.retries == 1
        same = engine.sharded_backend(jobs=2, retries=1)
        assert same is first
        rebuilt = engine.sharded_backend(jobs=2, retries=5)
        assert rebuilt is not first
        assert rebuilt.policy.retries == 5
        rebuilt.close()

    def test_analyzer_threads_resilience_knobs(self):
        analyzer = SERAnalyzer(generate_iscas("s953"))
        report = analyzer.analyze(jobs=2, retries=1, on_failure="degrade")
        assert report.total_fit > 0
        backend = analyzer.engine._sharded_backend
        assert backend.policy.retries == 1
        assert backend.policy.on_failure == "degrade"

    def test_cli_resilience_flags(self, capsys):
        from repro.cli import main

        assert main([
            "analyze", "s953", "--jobs", "2",
            "--retries", "1", "--shard-timeout", "60",
            "--on-worker-failure", "degrade", "--top", "3",
        ]) == 0
        assert "SER" in capsys.readouterr().out

    def test_stats_expose_resilience_counters(self, s953):
        engine, site_ids, _ = s953
        with chaos_backend(engine) as backend:
            backend.p_sensitized_many(site_ids)
            for counter in ("retries", "respawns", "worker_crashes",
                            "shard_timeouts", "transport_fallbacks",
                            "degraded_shards", "quarantined_segments"):
                assert backend.stats[counter] == 0  # clean run
            assert all(
                isinstance(o, ShardOutcome) and o.attempts == 1
                for o in backend.last_outcomes
            )
