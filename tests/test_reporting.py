"""Report emitters."""

import json
from dataclasses import dataclass

import pytest

from repro.experiments.reporting import format_columns, rows_to_csv, rows_to_json


@dataclass
class Row:
    name: str
    value: float


class TestCsv:
    def test_dataclass_rows(self):
        text = rows_to_csv([Row("a", 1.5), Row("b", 2.0)])
        lines = text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.5"

    def test_mapping_rows(self):
        text = rows_to_csv([{"x": 1, "y": 2}])
        assert "x,y" in text

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.csv"
        rows_to_csv([Row("a", 1.0)], path=str(path))
        assert path.read_text().startswith("name,value")

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            rows_to_csv([object()])


class TestJson:
    def test_round_trips(self):
        rows = [Row("a", 1.5)]
        decoded = json.loads(rows_to_json(rows))
        assert decoded == [{"name": "a", "value": 1.5}]

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.json"
        rows_to_json([{"k": "v"}], path=str(path))
        assert json.loads(path.read_text()) == [{"k": "v"}]


class TestColumns:
    def test_alignment(self):
        text = format_columns(["name", "fit"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(line) for line in lines)) == 1  # equal width
