"""Full SER analysis: factor combination, ranking, extensions."""

import pytest

from repro.core.analysis import SERAnalyzer
from repro.errors import AnalysisError
from repro.netlist.library import c17, s27
from repro.ser.electrical import ElectricalMaskingModel
from repro.ser.latching import LatchingModel
from repro.ser.seu_rate import SEURateModel


class TestFactorization:
    def test_node_ser_is_the_product(self, s27_circuit):
        analyzer = SERAnalyzer(s27_circuit)
        entry = analyzer.node_ser("G9")
        assert entry.ser == pytest.approx(
            entry.r_seu * entry.p_latched * entry.p_sensitized
        )
        assert entry.fit == pytest.approx(entry.ser * 3600e9)

    def test_report_covers_default_sites(self, s27_circuit):
        report = SERAnalyzer(s27_circuit).analyze()
        assert set(report.nodes) == set(s27_circuit.gates)

    def test_total_fit_adds_up(self, s27_circuit):
        report = SERAnalyzer(s27_circuit).analyze()
        assert report.total_fit == pytest.approx(
            sum(entry.fit for entry in report.nodes.values())
        )

    def test_custom_models_scale_linearly(self, c17_circuit):
        base = SERAnalyzer(c17_circuit).analyze()
        doubled_flux = SERAnalyzer(
            c17_circuit, seu_model=SEURateModel(flux=2 * SEURateModel().flux)
        ).analyze()
        assert doubled_flux.total_fit == pytest.approx(2 * base.total_fit)


class TestRanking:
    def test_ranked_is_descending(self, s27_circuit):
        ranked = SERAnalyzer(s27_circuit).analyze().ranked()
        sers = [entry.ser for entry in ranked]
        assert sers == sorted(sers, reverse=True)

    def test_top_parameter(self, s27_circuit):
        assert len(SERAnalyzer(s27_circuit).analyze().ranked(top=3)) == 3

    def test_contribution_sums_to_one(self, s27_circuit):
        report = SERAnalyzer(s27_circuit).analyze()
        total = sum(report.contribution(node) for node in report.nodes)
        assert total == pytest.approx(1.0)

    def test_contribution_unknown_node(self, s27_circuit):
        with pytest.raises(AnalysisError):
            SERAnalyzer(s27_circuit).analyze().contribution("ghost")

    def test_format_table(self, s27_circuit):
        text = SERAnalyzer(s27_circuit).analyze().format_table(top=4)
        assert "FIT" in text and "s27" in text


class TestElectricalExtension:
    def test_attenuation_never_increases_observability(self, c17_circuit):
        plain = SERAnalyzer(c17_circuit).analyze()
        derated = SERAnalyzer(
            c17_circuit,
            electrical_model=ElectricalMaskingModel(attenuation_per_level=3e-11),
        ).analyze()
        # With the default latching window folded in differently, compare
        # the observable probability via FIT normalized by R_SEU.
        for node in plain.nodes:
            plain_obs = plain.nodes[node].p_sensitized
            derated_obs = derated.nodes[node].fit / (
                derated.nodes[node].r_seu * 3600e9
            )
            assert derated_obs <= plain_obs + 1e-9

    def test_strong_attenuation_kills_deep_sites(self, c17_circuit):
        analyzer = SERAnalyzer(
            c17_circuit,
            latching_model=LatchingModel(nominal_pulse_width=6e-11),
            electrical_model=ElectricalMaskingModel(
                attenuation_per_level=2.5e-11, cutoff_width=2e-11
            ),
        )
        # N10 sits 2 levels from the outputs: pulse 60ps - 2*25ps = 10ps <= cutoff.
        assert analyzer.node_ser("N10").ser == pytest.approx(0.0)
        # The PO driver itself is unattenuated and survives.
        assert analyzer.node_ser("N22").ser > 0.0


class TestMultiCycle:
    def test_monotone_in_cycles(self, s27_circuit):
        analyzer = SERAnalyzer(s27_circuit)
        values = [
            analyzer.multi_cycle_observability("G12", cycles=c) for c in (1, 2, 3, 4)
        ]
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 1e-12
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_one_cycle_counts_only_direct_pos(self, s27_circuit):
        analyzer = SERAnalyzer(s27_circuit)
        engine_result = analyzer.engine.node_epp("G10")
        # G10 reaches no PO directly (only DFF G5), so 1-cycle observability is 0.
        one_cycle = analyzer.multi_cycle_observability("G10", cycles=1)
        assert one_cycle == pytest.approx(0.0)
        assert engine_result.p_sensitized == pytest.approx(1.0)  # captured by FF

    def test_multi_cycle_reaches_po_through_state(self, s27_circuit):
        analyzer = SERAnalyzer(s27_circuit)
        assert analyzer.multi_cycle_observability("G10", cycles=3) > 0.0

    def test_invalid_cycles(self, s27_circuit):
        with pytest.raises(AnalysisError):
            SERAnalyzer(s27_circuit).multi_cycle_observability("G10", cycles=0)
