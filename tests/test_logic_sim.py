"""Bit-parallel logic simulation vs the reference evaluator."""

import pytest

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import random_combinational
from repro.netlist.library import c17, counter, s27
from repro.sim.logic_sim import BitParallelSimulator, simulate_sequential
from repro.sim.vectors import RandomVectorSource, exhaustive_words


class TestCombinational:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference_evaluator(self, seed):
        circuit = random_combinational(6, 35, seed=seed)
        simulator = BitParallelSimulator(circuit)
        words, width = exhaustive_words(circuit.inputs)
        values = simulator.run(words, width)
        for pattern in (0, 1, width // 2, width - 1):
            assignment = {
                name: (words[name] >> pattern) & 1 for name in circuit.inputs
            }
            reference = circuit.evaluate(assignment)
            for node_id, name in enumerate(simulator.compiled.names):
                assert (values[node_id] >> pattern) & 1 == reference[name], name

    def test_constants_fill_automatically(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_const("one", 1)
        circuit.add_gate("g", GateType.AND, ["a", "one"])
        circuit.mark_output("g")
        simulator = BitParallelSimulator(circuit)
        values = simulator.run({"a": 0b1010}, 4)
        assert values[simulator.compiled.index["g"]] == 0b1010

    def test_missing_input_raises(self):
        simulator = BitParallelSimulator(c17())
        with pytest.raises(SimulationError, match="missing input"):
            simulator.run({"N1": 0}, 4)

    def test_missing_state_raises(self):
        simulator = BitParallelSimulator(s27())
        words = {name: 0 for name in ["G0", "G1", "G2", "G3"]}
        with pytest.raises(SimulationError, match="DFF"):
            simulator.run(words, 4)

    def test_input_words_masked_to_width(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.BUF, ["a"])
        circuit.mark_output("g")
        simulator = BitParallelSimulator(circuit)
        values = simulator.run({"a": 0xFFFF}, 4)
        assert values[simulator.compiled.index["g"]] == 0xF

    def test_run_named(self):
        circuit = c17()
        simulator = BitParallelSimulator(circuit)
        named = simulator.run_named({name: 0 for name in circuit.inputs}, 1)
        reference = circuit.evaluate({name: 0 for name in circuit.inputs})
        assert named == reference


class TestSequential:
    def test_counter_counts_bitparallel(self):
        circuit = counter(3)
        # Two parallel universes: en=1 in bit 0, en=0 in bit 1.
        trace = simulate_sequential(circuit, lambda _: {"en": 0b01}, cycles=5, width=2)
        lane0 = [
            sum(((trace.word(t, f"q{i}") >> 0) & 1) << i for i in range(3))
            for t in range(5)
        ]
        lane1 = [
            sum(((trace.word(t, f"q{i}") >> 1) & 1) << i for i in range(3))
            for t in range(5)
        ]
        assert lane0 == [0, 1, 2, 3, 4]
        assert lane1 == [0, 0, 0, 0, 0]

    def test_initial_state_respected(self):
        circuit = counter(3)
        trace = simulate_sequential(
            circuit,
            lambda _: {"en": 1},
            cycles=2,
            width=1,
            initial_state={"q0": 1, "q1": 1, "q2": 0},
        )
        first = sum(trace.word(0, f"q{i}") << i for i in range(3))
        assert first == 3

    def test_unknown_initial_state_rejected(self):
        with pytest.raises(SimulationError, match="unknown flip-flop"):
            simulate_sequential(
                counter(2), lambda _: {"en": 1}, cycles=1, width=1,
                initial_state={"zz": 1},
            )

    def test_keep_trace_false_keeps_last_cycle_only(self):
        trace = simulate_sequential(
            counter(2), lambda _: {"en": 1}, cycles=4, width=1, keep_trace=False
        )
        assert trace.cycles == 1

    def test_input_sequence_as_list(self):
        circuit = counter(2)
        inputs = [{"en": 1}, {"en": 0}, {"en": 1}]
        trace = simulate_sequential(circuit, inputs, cycles=3, width=1)
        values = [
            sum(trace.word(t, f"q{i}") << i for i in range(2)) for t in range(3)
        ]
        assert values == [0, 1, 1]
