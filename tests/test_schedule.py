"""Cone-aware scheduling layer: index correctness, caching, clustering.

The :class:`ConeIndex` must agree exactly with the scalar engine's cone
extractor on which sinks every node reaches (it is the same reachability,
computed in one reverse-topological pass instead of one forward search
per site).  Caching must behave like the batch plan's: one instance per
compiled circuit, invalidated when the circuit is recompiled, stripped by
``__getstate__`` so the sharded worker payload stays lean.  Clustering is
a pure permutation with sites of identical cone signature adjacent.
"""

import pickle
import time

import pytest

np = pytest.importorskip("numpy")

from repro.core.cone import ConeExtractor
from repro.core.epp import EPPEngine
from repro.core.epp_batch import BatchPlan
from repro.core.schedule import (
    ChunkCache,
    ConeIndex,
    adaptive_chunk_spans,
    chunk_cache_key,
    chunk_prune_saturated,
    cone_cluster_order,
    resolve_prune,
    resolve_schedule,
    validate_cells,
    validate_chunking,
    validate_rows,
    validate_schedule,
)
from repro.errors import AnalysisError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import generate_iscas
from repro.netlist.library import s27


def zoo_circuit() -> Circuit:
    from tests.test_epp_backends import gate_zoo

    return gate_zoo()


class TestConeIndex:
    @pytest.mark.parametrize("circuit_factory", [s27, zoo_circuit,
                                                 lambda: generate_iscas("s953")])
    def test_signatures_match_cone_extractor(self, circuit_factory):
        """For every node: the bitset's sinks == the extracted cone's sinks."""
        compiled = circuit_factory().compiled()
        index = ConeIndex.for_compiled(compiled)
        extractor = ConeExtractor(compiled)
        for node_id in range(compiled.n):
            expected = set(extractor.cone(node_id).sinks)
            got = {
                compiled.sink_ids[position]
                for position in index.reachable_sink_positions(node_id)
            }
            assert got == expected, compiled.names[node_id]

    def test_index_cached_per_compiled(self):
        compiled = s27().compiled()
        assert ConeIndex.for_compiled(compiled) is ConeIndex.for_compiled(compiled)

    def test_recompiling_invalidates_plan_and_cone_index(self):
        """Mutating the circuit rebuilds CompiledCircuit, so the caches on
        the stale snapshot can never leak into the new topology."""
        circuit = s27()
        compiled = circuit.compiled()
        plan = BatchPlan.for_compiled(compiled)
        index = ConeIndex.for_compiled(compiled)
        circuit.add_gate("extra", GateType.AND, ["G10", "G11"])
        circuit.mark_output("extra")
        recompiled = circuit.compiled()
        assert recompiled is not compiled
        assert BatchPlan.for_compiled(recompiled) is not plan
        assert ConeIndex.for_compiled(recompiled) is not index
        # The new index knows the new sink; the old one cannot.
        assert ConeIndex.for_compiled(recompiled).n_sinks == index.n_sinks + 1

    def test_getstate_strips_cone_index_and_plans(self):
        """Pickling a compiled circuit (the sharded worker payload) drops
        every cached execution structure; workers rebuild locally."""
        compiled = generate_iscas("s953").compiled()
        BatchPlan.for_compiled(compiled)
        ConeIndex.for_compiled(compiled)
        assert hasattr(compiled, "_batch_epp_plan")
        assert hasattr(compiled, "_cone_index")
        state = compiled.__getstate__()
        assert "_batch_epp_plan" not in state
        assert "_cone_index" not in state
        restored = pickle.loads(pickle.dumps(compiled))
        assert not hasattr(restored, "_batch_epp_plan")
        assert not hasattr(restored, "_cone_index")
        # The restored circuit rebuilds an equivalent index from scratch.
        rebuilt = ConeIndex.for_compiled(restored)
        assert rebuilt.sig == ConeIndex.for_compiled(compiled).sig


class TestClusterOrder:
    def test_is_a_permutation(self):
        compiled = generate_iscas("s953").compiled()
        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine._cones.resolve(site) for site in engine.default_sites()]
        order = cone_cluster_order(compiled, ids)
        assert sorted(order.tolist()) == list(range(len(ids)))

    def test_identical_signatures_are_adjacent(self):
        compiled = generate_iscas("s953").compiled()
        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine._cones.resolve(site) for site in engine.default_sites()]
        order = cone_cluster_order(compiled, ids)
        sig = ConeIndex.for_compiled(compiled).sig
        signatures = [sig[ids[position]] for position in order.tolist()]
        # Once a signature class ends it never reappears later in the order.
        seen = set()
        previous = None
        for signature in signatures:
            if signature != previous:
                assert signature not in seen, "signature class split apart"
                seen.add(signature)
                previous = signature

    def test_stable_for_equal_keys(self):
        """Duplicate sites keep their input order (the sort is stable)."""
        compiled = s27().compiled()
        site = compiled.index["G10"]
        order = cone_cluster_order(compiled, [site, site, site])
        assert order.tolist() == [0, 1, 2]


class TestChunkCache:
    def test_key_depends_on_order_and_content(self):
        """Column assignment follows site order, so the key must too."""
        assert chunk_cache_key([1, 2, 3]) == chunk_cache_key([1, 2, 3])
        assert chunk_cache_key([1, 2, 3]) != chunk_cache_key([3, 2, 1])
        assert chunk_cache_key([1, 2, 3]) != chunk_cache_key([1, 2, 4])
        assert chunk_cache_key(np.asarray([5, 7], dtype=np.intp)) == \
            chunk_cache_key([5, 7])

    def test_fifo_eviction_bounds_entries(self):
        cache = ChunkCache(max_entries=3)
        for index in range(5):
            cache.put(chunk_cache_key([index]), index)
        assert len(cache) == 3
        assert cache.get(chunk_cache_key([0])) is None  # evicted first
        assert cache.get(chunk_cache_key([4])) == 4

    def test_overwrite_does_not_evict(self):
        cache = ChunkCache(max_entries=2)
        key = chunk_cache_key([9])
        cache.put(key, "a")
        cache.put(chunk_cache_key([10]), "b")
        cache.put(key, "c")  # overwrite in place, nothing evicted
        assert len(cache) == 2
        assert cache.get(key) == "c"
        cache.clear()
        assert len(cache) == 0

    def test_saturation_verdict_memoized_per_chunk(self):
        """The prune="auto" predicate is computed once per distinct chunk
        and shared through the plan's cache (sat: keys)."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.vector_backend(prune=True, schedule="cone")
        backend.min_vector_work = 0
        ids = np.asarray(
            [engine._cones.resolve(s) for s in engine.default_sites()][:16],
            dtype=np.intp,
        )
        verdict = backend._chunk_saturated(ids)
        assert verdict == chunk_prune_saturated(engine.compiled, ids)
        key = b"sat:" + chunk_cache_key(ids)
        assert backend.plan.chunk_cache.get(key) == verdict
        # A second backend over the same compiled circuit shares the memo.
        other = engine.vector_backend(prune=False)
        assert other.plan.chunk_cache is backend.plan.chunk_cache


class TestChunkCacheConcurrency:
    """get_or_create under contention: the plan cache is shared between
    the sweeper thread and whatever thread drives the analysis, so a
    race must never construct twice or tear a read."""

    def test_hammer_builds_exactly_once(self):
        import threading

        cache = ChunkCache(max_entries=8)
        key = chunk_cache_key([1, 2, 3])
        builds = []
        barrier = threading.Barrier(8)

        def factory():
            builds.append(threading.get_ident())
            time.sleep(0.01)  # widen the race window
            return {"plan": object()}

        results = [None] * 8

        def worker(slot):
            barrier.wait()
            results[slot] = cache.get_or_create(key, factory)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1  # single construction under contention
        # No torn reads: every thread observed the one published object.
        assert all(result is results[0] for result in results)
        assert cache.get(key) is results[0]

    def test_distinct_keys_build_independently(self):
        import threading

        cache = ChunkCache(max_entries=64)
        built = []

        def worker(index):
            key = chunk_cache_key([index])
            value = cache.get_or_create(key, lambda: built.append(index) or index)
            assert value == index

        threads = [
            threading.Thread(target=worker, args=(index % 16,))
            for index in range(64)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(set(built)) == list(range(16))
        assert len(built) == 16  # once per key, not per caller

    def test_falsy_value_cached_not_rebuilt(self):
        """The saturation verdict is stored as a plain ``False`` —
        presence must be ``is not None``, never truthiness."""
        cache = ChunkCache()
        key = chunk_cache_key([7])
        calls = []
        assert cache.get_or_create(key, lambda: calls.append(1) or False) is False
        assert cache.get_or_create(key, lambda: calls.append(1) or True) is False
        assert len(calls) == 1

    def test_get_or_create_respects_fifo_cap(self):
        cache = ChunkCache(max_entries=2)
        for index in range(4):
            cache.get_or_create(chunk_cache_key([index]), lambda i=index: i)
        assert len(cache) == 2
        assert cache.get(chunk_cache_key([0])) is None  # evicted first
        assert cache.get(chunk_cache_key([3])) == 3

    def test_existing_entry_skips_factory_and_lock_contention(self):
        cache = ChunkCache()
        key = chunk_cache_key([11])
        cache.put(key, "resident")

        def exploding_factory():
            raise AssertionError("factory must not run for a resident key")

        assert cache.get_or_create(key, exploding_factory) == "resident"


class TestRowsKnob:
    def test_validate_accepts_known_values(self):
        assert validate_rows(None) == "auto"
        for value in ("auto", "compact", "full"):
            assert validate_rows(value) == value

    def test_validate_rejects_unknown(self):
        with pytest.raises(AnalysisError, match="unknown rows"):
            validate_rows("sparse")

    def test_engine_rejects_bad_rows(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="unknown rows"):
            engine.analyze(backend="vector", rows="narrow")

    def test_scalar_backend_rejects_bad_rows_too(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="unknown rows"):
            engine.analyze(backend="scalar", rows="narrow")


class TestScheduleKnob:
    def test_validate_accepts_known_values(self):
        assert validate_schedule(None) == "auto"
        for value in ("auto", "cone", "input"):
            assert validate_schedule(value) == value

    def test_validate_rejects_unknown(self):
        with pytest.raises(AnalysisError, match="unknown schedule"):
            validate_schedule("random")

    def test_auto_resolution_clusters_only_multi_chunk(self):
        assert resolve_schedule("auto", 10, 32) == "input"
        assert resolve_schedule("auto", 33, 32) == "cone"
        assert resolve_schedule("cone", 2, 32) == "cone"
        assert resolve_schedule("input", 1000, 32) == "input"

    def test_engine_rejects_bad_schedule(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="unknown schedule"):
            engine.analyze(backend="vector", schedule="sorted")

    def test_scalar_backend_rejects_bad_schedule_too(self):
        """The scalar path ignores the knob but a typo must still fail."""
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="unknown schedule"):
            engine.analyze(backend="scalar", schedule="sorted")

    def test_table2_config_rejects_knobs_on_scalar_backend(self):
        from repro.errors import ConfigError
        from repro.experiments.table2 import Table2Config

        with pytest.raises(ConfigError, match="vector"):
            Table2Config(prune=False)  # default backend is scalar
        with pytest.raises(ConfigError, match="vector"):
            Table2Config(schedule="cone")
        Table2Config(backend="vector", prune=False, schedule="cone")  # fine

    def test_backend_cache_keyed_by_prune_and_schedule(self):
        engine = EPPEngine(s27())
        default = engine.vector_backend()
        assert engine.vector_backend() is default
        pruned_off = engine.vector_backend(prune=False)
        assert pruned_off is not default
        assert pruned_off.prune is False
        clustered = engine.vector_backend(schedule="cone")
        assert clustered is not pruned_off
        assert clustered.schedule == "cone"

    def test_backend_cache_keyed_by_cells_and_chunking(self):
        engine = EPPEngine(s27())
        default = engine.vector_backend()
        compacted = engine.vector_backend(cells="on")
        assert compacted is not default
        assert compacted.cells == "on"
        adaptive = engine.vector_backend(chunking="adaptive")
        assert adaptive is not compacted
        assert adaptive.chunking == "adaptive"
        assert adaptive.cells == "auto"  # one-off "on" did not stick

    def test_validate_cells_and_chunking(self):
        assert validate_cells(None) == "auto"
        assert validate_chunking(None) == "auto"
        for value in ("auto", "on", "off"):
            assert validate_cells(value) == value
        for value in ("auto", "adaptive", "fixed"):
            assert validate_chunking(value) == value
        with pytest.raises(AnalysisError, match="unknown cells"):
            validate_cells("csr")
        with pytest.raises(AnalysisError, match="unknown chunking"):
            validate_chunking("dynamic")

    def test_engine_rejects_bad_cells_and_chunking(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="unknown cells"):
            engine.analyze(backend="vector", cells="csr")
        with pytest.raises(AnalysisError, match="unknown chunking"):
            engine.analyze(backend="scalar", chunking="dynamic")

    def test_resolve_prune_tri_state(self):
        assert resolve_prune(None) == "auto"
        assert resolve_prune(True) is True
        assert resolve_prune(False) is False
        # Idempotent over its own output: the sharded driver ships
        # resolved values to workers, which resolve again — "auto" must
        # survive the round trip instead of coercing truthy to True.
        assert resolve_prune("auto") == "auto"
        assert resolve_prune(resolve_prune(None)) == "auto"


class TestScheduledResults:
    def test_cone_schedule_preserves_input_order(self):
        """Scheduling permutes the sweep, never the returned mapping."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.vector_backend(batch_size=16, schedule="cone")
        backend.min_vector_work = 0
        sites = engine.default_sites()
        results = engine.analyze(sites=sites, backend="vector",
                                 batch_size=16, schedule="cone")
        assert list(results) == sites

    def test_cone_schedule_values_match_input_schedule(self):
        """Analyzed one backend at a time: the engine caches a single
        backend slot, so each configuration is built, forced onto the
        vectorized path, and queried before the next evicts it."""
        engine = EPPEngine(generate_iscas("s953"))
        site_ids = [engine._cones.resolve(s) for s in engine.default_sites()]

        backend = engine.vector_backend(batch_size=16, schedule="cone")
        backend.min_vector_work = 0
        clustered = backend.analyze_sites(site_ids)
        backend = engine.vector_backend(batch_size=16, schedule="input")
        backend.min_vector_work = 0
        ordered = backend.analyze_sites(site_ids)

        assert list(clustered) == list(ordered)
        for site in clustered:
            assert clustered[site].p_sensitized == ordered[site].p_sensitized
            assert clustered[site].cone_size == ordered[site].cone_size

    def test_pack_sites_reorders_to_input_order(self):
        """pack_sites under cone scheduling returns arrays aligned with the
        caller's site order — the sharded materialize contract."""
        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine._cones.resolve(site) for site in engine.default_sites()]
        clustered = engine.vector_backend(batch_size=16, schedule="cone")
        clustered.min_vector_work = 0
        packed_clustered = clustered.pack_sites(ids)
        ordered = engine.vector_backend(batch_size=16, schedule="input")
        ordered.min_vector_work = 0
        packed_ordered = ordered.pack_sites(ids)
        for left, right in zip(packed_clustered, packed_ordered):
            assert np.array_equal(left, right)


def disjoint_cones_circuit(n_cones: int = 64) -> Circuit:
    """``n_cones`` independent 2-input ANDs, each its own output — every
    site's cone signature is a distinct single bit, so any chunk's union
    popcount grows linearly with its width (maximal saturation)."""
    circuit = Circuit("disjoint")
    for index in range(n_cones):
        a = circuit.add_input(f"a{index}")
        b = circuit.add_input(f"b{index}")
        circuit.add_gate(f"g{index}", GateType.AND, [a, b])
        circuit.mark_output(f"g{index}")
    return circuit


def single_sink_chain(n_gates: int = 80) -> Circuit:
    """One AND/OR chain into one output — every site shares the single
    sink, so any chunk's union popcount stays 1 (no saturation)."""
    circuit = Circuit("chain")
    circuit.add_input("i0")
    circuit.add_input("i1")
    previous = "i0"
    for index in range(n_gates):
        name = f"n{index}"
        circuit.add_gate(name, GateType.AND if index % 2 else GateType.OR,
                         [previous, "i1"])
        previous = name
    circuit.mark_output(previous)
    return circuit


class TestAdaptiveChunkSpans:
    def test_spans_partition_the_site_list(self):
        compiled = generate_iscas("s953").compiled()
        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine._cones.resolve(site) for site in engine.default_sites()]
        order = cone_cluster_order(compiled, ids)
        clustered = [ids[position] for position in order.tolist()]
        spans = adaptive_chunk_spans(compiled, clustered, 64)
        assert spans[0][0] == 0
        assert spans[-1][1] == len(ids)
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start  # contiguous, no gaps, no overlaps
        assert all(1 <= stop - start <= 64 for start, stop in spans)

    def test_short_lists_are_one_span(self):
        compiled = s27().compiled()
        sites = [compiled.index["G10"], compiled.index["G11"]]
        assert adaptive_chunk_spans(compiled, sites, 64) == [(0, 2)]
        assert adaptive_chunk_spans(compiled, [], 64) == []

    def test_disjoint_cones_split_into_narrow_chunks(self):
        """Maximally saturating unions (every site a distinct sink) must
        close chunks early — more spans than the fixed slicing."""
        circuit = disjoint_cones_circuit(64)
        compiled = circuit.compiled()
        sites = [compiled.index[f"g{index}"] for index in range(64)]
        spans = adaptive_chunk_spans(compiled, sites, 32)
        assert len(spans) > 2  # fixed slicing would emit exactly two
        assert spans[0][0] == 0 and spans[-1][1] == 64

    def test_shared_sink_keeps_full_width(self):
        """A single shared sink never saturates: spans must match the
        fixed slicing exactly (wide chunks for disjoint-free runs)."""
        circuit = single_sink_chain(80)
        compiled = circuit.compiled()
        sites = [compiled.index[f"n{index}"] for index in range(80)]
        spans = adaptive_chunk_spans(compiled, sites, 64)
        assert spans == [(0, 64), (64, 80)]

    def test_any_partition_is_bit_identical(self):
        """Chunk widths are pure scheduling: forced-adaptive and fixed
        sweeps of the same sites produce bitwise-equal packed arrays."""
        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine._cones.resolve(site) for site in engine.default_sites()]
        adaptive = engine.vector_backend(batch_size=16, schedule="cone",
                                         prune=True, chunking="adaptive")
        adaptive.min_vector_work = 0
        packed_adaptive = adaptive.pack_sites(ids)
        fixed = engine.vector_backend(batch_size=16, schedule="cone",
                                      prune=True, chunking="fixed")
        fixed.min_vector_work = 0
        packed_fixed = fixed.pack_sites(ids)
        for left, right in zip(packed_adaptive, packed_fixed):
            assert np.array_equal(left, right)


class TestAutoPruneFallback:
    """The bench-driven dense fallback (BENCH_pr3.json: s953 sparse at
    0.99x of dense, s1423 at 0.83x — saturated full-circuit sweeps of
    small circuits lose to the dense kernels)."""

    def test_saturated_predicate_matches_bench_observation(self):
        """Full-circuit site lists of the regressed small circuits are
        exactly what the predicate must flag as saturated."""
        for name in ("s953", "s1423"):
            engine = EPPEngine(generate_iscas(name))
            ids = [engine._cones.resolve(s) for s in engine.default_sites()]
            assert chunk_prune_saturated(engine.compiled, ids), name

    def test_clustered_subset_is_not_saturated(self):
        """A single cone-cluster's sites cover few sinks — the workload
        pruning was built for must keep pruning."""
        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        order = cone_cluster_order(engine.compiled, ids)
        cluster = [ids[position] for position in order[:24].tolist()]
        assert not chunk_prune_saturated(engine.compiled, cluster)

    def test_large_circuits_never_consult_the_predicate(self, monkeypatch):
        """Above PRUNE_AUTO_MAX_NODES the skipped rows always dwarf the
        bookkeeping: saturation must not trigger the fallback."""
        import repro.core.schedule as schedule_module

        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        assert chunk_prune_saturated(engine.compiled, ids)
        monkeypatch.setattr(schedule_module, "PRUNE_AUTO_MAX_NODES", 400)
        assert not chunk_prune_saturated(engine.compiled, ids)

    def test_auto_mode_runs_saturated_sweeps_dense(self):
        """End to end: the default (auto) configuration routes the s953
        full-circuit analyze through dense sweeps — and skips the cluster
        sort, whose overhead was the other half of the regression."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.vector_backend(batch_size=64)
        backend.min_vector_work = 0
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        assert backend._schedule_order(np.asarray(ids, dtype=np.intp)) is None
        backend.analyze_sites(ids)
        stats = backend.sweep_stats
        assert stats["sweeps"] > 0
        assert stats["dense_fallback_sweeps"] == stats["sweeps"]
        assert stats["groups_row"] == stats["groups_cell"] == 0

    def test_forced_prune_overrides_the_fallback(self):
        """prune=True keeps the PR-3 contract: saturated or not, every
        sweep prunes (the knob is a force, not a hint)."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.vector_backend(batch_size=64, prune=True)
        backend.min_vector_work = 0
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        backend.analyze_sites(ids)
        stats = backend.sweep_stats
        assert stats["dense_fallback_sweeps"] == 0
        assert stats["groups_dense"] == 0
        assert stats["groups_row"] + stats["groups_cell"] > 0

    def test_unsaturated_auto_calls_still_prune(self):
        """The fallback must not blanket small circuits: a clustered
        subset under the same auto defaults keeps the sparse tiers."""
        engine = EPPEngine(generate_iscas("s953"))
        ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        order = cone_cluster_order(engine.compiled, ids)
        cluster = [ids[position] for position in order[:24].tolist()]
        backend = engine.vector_backend(batch_size=64)
        backend.min_vector_work = 0
        backend.analyze_sites(cluster)
        stats = backend.sweep_stats
        assert stats["dense_fallback_sweeps"] == 0
        assert stats["groups_row"] + stats["groups_cell"] > 0
