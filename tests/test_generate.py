"""Synthetic benchmark generator: determinism, profile fidelity, validity."""

import pytest

from repro.errors import ConfigError
from repro.netlist.bench import write_bench
from repro.netlist.gate_types import GateType
from repro.netlist.generate import (
    ISCAS89_PROFILES,
    GenerationProfile,
    generate_circuit,
    generate_iscas,
    random_combinational,
)
from repro.netlist.stats import circuit_stats
from repro.netlist.validate import validate_circuit


class TestDeterminism:
    def test_same_name_same_netlist(self):
        a = write_bench(generate_iscas("s953"))
        b = write_bench(generate_iscas("s953"))
        assert a == b

    def test_explicit_seed_changes_netlist(self):
        a = write_bench(generate_iscas("s953"))
        b = write_bench(generate_iscas("s953", seed=123))
        assert a != b

    def test_different_circuits_differ(self):
        assert write_bench(generate_iscas("s1196")) != write_bench(generate_iscas("s1238"))


class TestProfileFidelity:
    @pytest.mark.parametrize("name", ["s953", "s1196", "s1423", "s1488"])
    def test_interface_counts_exact(self, name):
        profile = ISCAS89_PROFILES[name]
        circuit = generate_iscas(name)
        assert len(circuit.inputs) == profile.n_inputs
        assert len(circuit.outputs) == profile.n_outputs
        assert len(circuit.flip_flops) == profile.n_flip_flops
        assert len(circuit.gates) == profile.n_gates

    @pytest.mark.parametrize("name", ["s953", "s1423"])
    def test_depth_close_to_target(self, name):
        profile = ISCAS89_PROFILES[name]
        depth = generate_iscas(name).depth()
        assert abs(depth - profile.depth) <= max(2, profile.depth // 10)

    @pytest.mark.parametrize("name", ["s953", "s1196"])
    def test_valid_and_reconvergent(self, name):
        circuit = generate_iscas(name)
        assert validate_circuit(circuit).ok
        stats = circuit_stats(circuit, reconvergence_limit=100)
        assert stats.n_reconvergent_stems > 0  # realistic structure

    def test_gate_mix_roughly_respected(self):
        circuit = generate_iscas("s9234")
        histogram = circuit_stats(circuit, reconvergence_limit=0).gate_histogram
        total = sum(histogram.values())
        # NAND configured at 21%: allow a generous band.
        assert 0.10 < histogram.get("NAND", 0) / total < 0.35

    def test_unknown_profile(self):
        with pytest.raises(ConfigError, match="profile"):
            generate_iscas("b17")

    def test_iscas85_names_resolve(self):
        circuit = generate_iscas("c6288")
        assert not circuit.is_sequential


class TestProfileValidation:
    def test_rejects_zero_inputs(self):
        with pytest.raises(ConfigError):
            GenerationProfile("bad", 0, 1, 0, 10, 3)

    def test_rejects_no_sinks(self):
        with pytest.raises(ConfigError):
            GenerationProfile("bad", 2, 0, 0, 10, 3)

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigError):
            GenerationProfile("bad", 2, 1, 0, 10, 0)


class TestRandomCombinational:
    def test_no_flip_flops(self):
        circuit = random_combinational(5, 30, seed=1)
        assert not circuit.is_sequential
        assert validate_circuit(circuit).ok

    def test_determinism_by_seed(self):
        a = write_bench(random_combinational(5, 30, seed=9))
        b = write_bench(random_combinational(5, 30, seed=9))
        assert a == b

    def test_size(self):
        circuit = random_combinational(6, 40, seed=2)
        assert len(circuit.gates) == 40
        assert len(circuit.inputs) == 6

    def test_custom_gate_mix(self):
        circuit = random_combinational(
            4, 20, seed=3, gate_mix={GateType.NAND: 1.0}
        )
        histogram = circuit_stats(circuit, reconvergence_limit=0).gate_histogram
        assert set(histogram) == {"NAND"}

    def test_tiny_profile_single_gate(self):
        profile = GenerationProfile("one", 2, 1, 0, 1, 1)
        circuit = generate_circuit(profile, seed=0)
        assert len(circuit.gates) == 1
        assert validate_circuit(circuit).ok
