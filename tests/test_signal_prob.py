"""Topological signal probabilities: gate formulas, trees, sequential fixpoint."""

import itertools

import pytest

from repro.errors import ProbabilityError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType, eval_gate_bool
from repro.netlist.library import counter, parity_tree, s27
from repro.probability.monte_carlo import monte_carlo_signal_probabilities
from repro.probability.signal_prob import (
    SequentialConvergence,
    compute_signal_probabilities,
    gate_output_probability,
)


def enumerate_gate_probability(gate_type, probs):
    """Ground truth: sum over input minterms."""
    total = 0.0
    for bits in itertools.product((0, 1), repeat=len(probs)):
        weight = 1.0
        for p, bit in zip(probs, bits):
            weight *= p if bit else 1 - p
        total += weight * eval_gate_bool(gate_type, list(bits))
    return total


@pytest.mark.parametrize(
    "gate_type",
    [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
     GateType.XOR, GateType.XNOR, GateType.MUX, GateType.MAJ],
)
def test_gate_formula_matches_enumeration(gate_type):
    probs = [0.3, 0.7, 0.5]
    got = gate_output_probability(gate_type, probs)
    assert got == pytest.approx(enumerate_gate_probability(gate_type, probs))


def test_not_and_buf():
    assert gate_output_probability(GateType.NOT, [0.3]) == pytest.approx(0.7)
    assert gate_output_probability(GateType.BUF, [0.3]) == pytest.approx(0.3)


def test_constants():
    assert gate_output_probability(GateType.CONST0, []) == 0.0
    assert gate_output_probability(GateType.CONST1, []) == 1.0


class TestCombinational:
    def test_default_inputs_are_half(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["a"])
        circuit.mark_output("g")
        sp = compute_signal_probabilities(circuit)
        assert sp["a"] == 0.5
        assert sp["g"] == 0.5

    def test_custom_input_probs(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", GateType.AND, ["a", "b"])
        circuit.mark_output("g")
        sp = compute_signal_probabilities(circuit, input_probs={"a": 0.9, "b": 0.9})
        assert sp["g"] == pytest.approx(0.81)

    def test_exact_on_tree(self):
        circuit = parity_tree(6)
        sp = compute_signal_probabilities(
            circuit, input_probs={f"x{i}": 0.3 for i in range(6)}
        )
        # Parity of independent bits: closed form via product of (1-2p).
        expected = 0.5 * (1 - (1 - 2 * 0.3) ** 6)
        assert sp[circuit.outputs[0]] == pytest.approx(expected)

    def test_validation(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.BUF, ["a"])
        circuit.mark_output("g")
        with pytest.raises(ProbabilityError, match="unknown node"):
            compute_signal_probabilities(circuit, input_probs={"zz": 0.5})
        with pytest.raises(ProbabilityError, match="out of"):
            compute_signal_probabilities(circuit, input_probs={"a": 1.5})


class TestSequential:
    def test_fixed_point_converges_on_s27(self):
        record = SequentialConvergence()
        compute_signal_probabilities(s27(), convergence=record)
        assert record.converged
        assert record.final_delta < 1e-9

    def test_counter_states_approach_half(self):
        # A free-running counter bit spends half its time at 1.
        sp = compute_signal_probabilities(
            counter(3), input_probs={"en": 1.0}, max_iterations=200
        )
        assert sp["q0"] == pytest.approx(0.5, abs=0.05)

    def test_state_probs_override(self):
        sp = compute_signal_probabilities(
            s27(), state_probs={"G5": 1.0, "G6": 1.0, "G7": 1.0}, max_iterations=1
        )
        assert 0.0 <= sp["G17"] <= 1.0

    def test_state_probs_reject_non_dff(self):
        with pytest.raises(ProbabilityError, match="non-DFF"):
            compute_signal_probabilities(s27(), state_probs={"G0": 0.5})

    def test_damping_still_converges(self):
        record = SequentialConvergence()
        compute_signal_probabilities(
            s27(), damping=0.5, convergence=record, max_iterations=200
        )
        assert record.converged

    def test_agrees_with_monte_carlo_on_s27(self):
        sp = compute_signal_probabilities(s27())
        mc = monte_carlo_signal_probabilities(
            s27(), n_vectors=200_000, seed=3, warmup_cycles=16
        )
        # Independence bias exists but stays moderate on s27.
        for name in ("G13", "G12", "G10"):
            assert sp[name] == pytest.approx(mc[name], abs=0.08)


class TestVectorizedPass:
    """The level-parallel NumPy pass must match the scalar pass exactly."""

    @staticmethod
    def _both_passes(circuit, monkeypatch, **kwargs):
        import repro.probability.signal_prob as sp_mod

        numpy = pytest.importorskip("numpy")
        monkeypatch.setattr(sp_mod, "_VEC_MIN_NODES", 0)
        vec = compute_signal_probabilities(circuit, **kwargs)
        monkeypatch.setattr(sp_mod, "_np", None)
        scalar = compute_signal_probabilities(circuit, **kwargs)
        return vec, scalar

    @pytest.mark.parametrize("maker", [s27, lambda: counter(4), lambda: parity_tree(8)])
    def test_matches_scalar_pass(self, maker, monkeypatch):
        vec, scalar = self._both_passes(maker(), monkeypatch)
        assert vec.keys() == scalar.keys()
        for name in scalar:
            assert vec[name] == pytest.approx(scalar[name], abs=1e-12), name

    def test_matches_scalar_on_generated_circuit(self, monkeypatch):
        from repro.netlist.generate import generate_iscas

        vec, scalar = self._both_passes(generate_iscas("s953"), monkeypatch)
        for name in scalar:
            assert vec[name] == pytest.approx(scalar[name], abs=1e-12), name

    def test_mux_and_maj_kernels(self, monkeypatch):
        circuit = Circuit("vec_zoo")
        for name in ("a", "b", "c", "d", "e"):
            circuit.add_input(name)
        circuit.add_gate("m", GateType.MUX, ["a", "b", "c"])
        circuit.add_gate("j3", GateType.MAJ, ["a", "b", "c"])
        circuit.add_gate("j5", GateType.MAJ, ["a", "b", "c", "d", "e"])
        circuit.add_gate("x", GateType.XOR, ["m", "j3"])
        circuit.mark_output("x")
        circuit.mark_output("j5")
        probs = {"a": 0.3, "b": 0.7, "c": 0.5, "d": 0.9, "e": 0.1}
        vec, scalar = self._both_passes(circuit, monkeypatch, input_probs=probs)
        for name in scalar:
            assert vec[name] == pytest.approx(scalar[name], abs=1e-12), name

    def test_returns_plain_floats(self, monkeypatch):
        import repro.probability.signal_prob as sp_mod

        pytest.importorskip("numpy")
        monkeypatch.setattr(sp_mod, "_VEC_MIN_NODES", 0)  # force the vec path
        sp = compute_signal_probabilities(s27())
        assert all(type(v) is float for v in sp.values())
