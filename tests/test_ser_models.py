"""SER component models: R_SEU, latching window, electrical masking, FIT."""

import math

import pytest

from repro.errors import ConfigError
from repro.netlist.gate_types import GateType
from repro.ser.electrical import ElectricalMaskingModel
from repro.ser.fit import (
    combine_fit,
    fit_to_mtbf_years,
    fit_to_per_second,
    per_second_to_fit,
)
from repro.ser.latching import LatchingModel
from repro.ser.seu_rate import TECHNOLOGY_PRESETS, SEURateModel


class TestSEURate:
    def test_rate_is_flux_times_cross_section(self):
        model = SEURateModel(flux=1.0, base_cross_section_cm2=2.0)
        assert model.rate(GateType.AND) == pytest.approx(2.0)

    def test_type_weights_differentiate_cells(self):
        model = SEURateModel()
        assert model.rate(GateType.XOR) > model.rate(GateType.NOT)
        assert model.rate(GateType.DFF) > model.rate(GateType.NAND)

    def test_sources_have_zero_rate(self):
        model = SEURateModel()
        assert model.rate(GateType.INPUT) == 0.0
        assert model.rate(GateType.CONST0) == 0.0

    def test_drive_strength_divides_rate(self):
        model = SEURateModel(drive_strength={"big_gate": 4.0})
        weak = model.rate(GateType.AND, "normal_gate")
        strong = model.rate(GateType.AND, "big_gate")
        assert strong == pytest.approx(weak / 4.0)

    def test_with_drive_strength_is_functional_update(self):
        base = SEURateModel()
        hardened = base.with_drive_strength({"g": 10.0})
        assert base.rate(GateType.AND, "g") == pytest.approx(
            10.0 * hardened.rate(GateType.AND, "g")
        )
        assert base.drive_strength == {}

    def test_validation(self):
        with pytest.raises(ConfigError):
            SEURateModel(flux=-1.0)
        with pytest.raises(ConfigError):
            SEURateModel(base_cross_section_cm2=-1e-15)
        with pytest.raises(ConfigError):
            SEURateModel(drive_strength={"g": 0.0})

    def test_presets_exist_and_scale(self):
        sea = TECHNOLOGY_PRESETS["sea-level-130nm"]
        avionics = TECHNOLOGY_PRESETS["avionics-130nm"]
        assert avionics.rate(GateType.AND) > 100 * sea.rate(GateType.AND)


class TestLatching:
    def test_window_formula(self):
        model = LatchingModel(clock_period=1e-9, window=5e-11, nominal_pulse_width=1.5e-10)
        assert model.p_latched() == pytest.approx((1.5e-10 - 5e-11) / 1e-9)

    def test_narrow_pulse_never_latches(self):
        model = LatchingModel(window=5e-11)
        assert model.p_latched(pulse_width=4e-11) == 0.0

    def test_wide_pulse_always_latches(self):
        model = LatchingModel(clock_period=1e-9)
        assert model.p_latched(pulse_width=2e-9) == 1.0

    def test_monotone_in_pulse_width(self):
        model = LatchingModel()
        widths = [1e-11 * k for k in range(1, 30)]
        values = [model.p_latched(w) for w in widths]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatchingModel(clock_period=0.0)
        with pytest.raises(ConfigError):
            LatchingModel(window=-1.0)
        with pytest.raises(ConfigError):
            LatchingModel().p_latched(pulse_width=-1e-12)


class TestElectrical:
    def test_linear_attenuation(self):
        model = ElectricalMaskingModel(attenuation_per_level=1e-11, cutoff_width=2e-11)
        assert model.width_after(1.5e-10, 0) == pytest.approx(1.5e-10)
        assert model.width_after(1.5e-10, 5) == pytest.approx(1.0e-10)

    def test_cutoff_masks_completely(self):
        model = ElectricalMaskingModel(attenuation_per_level=1e-11, cutoff_width=2e-11)
        assert model.width_after(1.5e-10, 14) == 0.0
        assert model.width_after(1.5e-10, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ElectricalMaskingModel(attenuation_per_level=-1.0)
        with pytest.raises(ConfigError):
            ElectricalMaskingModel().width_after(1e-10, -1)


class TestFit:
    def test_per_second_round_trip(self):
        rate = 2.5e-16
        assert fit_to_per_second(per_second_to_fit(rate)) == pytest.approx(rate)

    def test_one_fit_is_one_failure_per_1e9_hours(self):
        assert per_second_to_fit(1.0 / (3600.0 * 1e9)) == pytest.approx(1.0)

    def test_mtbf(self):
        # 1e9 FIT -> 1 hour MTBF.
        assert fit_to_mtbf_years(1e9) == pytest.approx(1 / (24 * 365.25))
        assert math.isinf(fit_to_mtbf_years(0.0))

    def test_combine_adds(self):
        assert combine_fit([1.0, 2.0, 3.5]) == pytest.approx(6.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            per_second_to_fit(-1.0)
        with pytest.raises(ConfigError):
            combine_fit([1.0, -2.0])
        with pytest.raises(ConfigError):
            fit_to_mtbf_years(-5.0)
