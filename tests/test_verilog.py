"""Structural Verilog reader/writer."""

import pytest

from repro.errors import ParseError
from repro.netlist.gate_types import GateType
from repro.netlist.library import (
    c17,
    counter,
    figure1_circuit,
    mux_tree,
    ripple_carry_adder,
    s27,
)
from repro.netlist.verilog import parse_verilog, parse_verilog_file, write_verilog

S27_VERILOG = """\
// s27 hand-written in the common mirror style
module s27 (G0, G1, G2, G3, G17);
  input G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;

  dff DFF_0 (.Q(G5), .D(G10));
  dff DFF_1 (.Q(G6), .D(G11));
  dff DFF_2 (.Q(G7), .D(G13));
  not NOT_0 (G14, G0);
  not NOT_1 (G17, G11);
  and AND2_0 (G8, G14, G6);
  or  OR2_0  (G15, G12, G8);
  or  OR2_1  (G16, G3, G8);
  nand NAND2_0 (G9, G16, G15);
  nor NOR2_0 (G10, G14, G11);
  nor NOR2_1 (G11, G5, G9);
  nor NOR2_2 (G12, G1, G7);
  nor NOR2_3 (G13, G2, G12);
endmodule
"""


class TestParse:
    def test_s27_structure_matches_bench_version(self):
        from_verilog = parse_verilog(S27_VERILOG)
        reference = s27()
        assert from_verilog.inputs == reference.inputs
        assert from_verilog.outputs == reference.outputs
        assert set(from_verilog.flip_flops) == set(reference.flip_flops)
        for node in reference:
            copy = from_verilog.node(node.name)
            assert copy.gate_type is node.gate_type
            assert set(copy.fanin) == set(node.fanin)

    def test_s27_behaviour_matches(self):
        from_verilog = parse_verilog(S27_VERILOG)
        reference = s27()
        assignment = {"G0": 1, "G1": 0, "G2": 1, "G3": 0, "G5": 0, "G6": 1, "G7": 0}
        assert from_verilog.evaluate(assignment) == reference.evaluate(assignment)

    def test_positional_dff(self):
        text = "module m (a, q);\n input a;\n output q;\n dff D0 (q, a);\nendmodule\n"
        circuit = parse_verilog(text)
        assert circuit.node("q").gate_type is GateType.DFF

    def test_assign_alias_and_constants(self):
        text = (
            "module m (a, y);\n input a;\n output y;\n wire t, z1, z0;\n"
            "assign t = a;\n assign z1 = 1'b1;\n assign z0 = 1'b0;\n"
            "and A0 (y, t, z1);\nendmodule\n"
        )
        circuit = parse_verilog(text)
        assert circuit.node("t").gate_type is GateType.BUF
        assert circuit.node("z1").gate_type is GateType.CONST1
        assert circuit.node("z0").gate_type is GateType.CONST0

    def test_block_and_line_comments_ignored(self):
        text = (
            "/* header\n spanning lines */\n"
            "module m (a, y); // ports\n input a;\n output y;\n"
            "not N (y, a); // inverter\nendmodule\n"
        )
        assert parse_verilog(text).node("y").gate_type is GateType.NOT

    def test_module_name_used(self):
        text = "module widget (a, y);\n input a;\n output y;\n buf B (y, a);\nendmodule\n"
        assert parse_verilog(text).name == "widget"


class TestParseErrors:
    def test_vector_declarations_rejected(self):
        text = "module m (a, y);\n input [3:0] a;\n output y;\nendmodule\n"
        with pytest.raises(ParseError, match="vector"):
            parse_verilog(text)

    def test_expression_assign_rejected(self):
        text = (
            "module m (a, b, y);\n input a, b;\n output y;\n"
            "assign y = a & b;\nendmodule\n"
        )
        with pytest.raises(ParseError, match="alias/constant"):
            parse_verilog(text)

    def test_unknown_primitive(self):
        text = "module m (a, y);\n input a;\n output y;\n latch L (y, a);\nendmodule\n"
        with pytest.raises(ParseError, match="unknown primitive"):
            parse_verilog(text)

    def test_missing_endmodule(self):
        with pytest.raises(ParseError, match="endmodule"):
            parse_verilog("module m (a);\n input a;\n")

    def test_undriven_output(self):
        text = "module m (a, y);\n input a;\n output y;\nendmodule\n"
        with pytest.raises(ParseError, match="never driven"):
            parse_verilog(text)

    def test_mixed_port_styles_rejected(self):
        text = (
            "module m (a, q);\n input a;\n output q;\n"
            "dff D (.Q(q), a);\nendmodule\n"
        )
        with pytest.raises(ParseError, match="mix"):
            parse_verilog(text)

    def test_named_ports_on_gates_rejected(self):
        text = (
            "module m (a, y);\n input a;\n output y;\n"
            "not N (.Q(y), .D(a));\nendmodule\n"
        )
        with pytest.raises(ParseError, match="dff"):
            parse_verilog(text)

    def test_two_modules_rejected(self):
        text = (
            "module m (a, y);\n input a;\n output y;\n buf B (y, a);\nendmodule\n"
            "module n (b, z);\n input b;\n output z;\n buf C (z, b);\nendmodule\n"
        )
        with pytest.raises(ParseError, match="after endmodule|one module"):
            parse_verilog(text)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [c17, s27, figure1_circuit, lambda: ripple_carry_adder(4),
         lambda: counter(3), lambda: mux_tree(2)],
    )
    def test_write_then_parse_preserves_structure(self, factory):
        original = factory()
        text = write_verilog(original)
        reparsed = parse_verilog(text, name=original.name)
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert set(reparsed.flip_flops) == set(original.flip_flops)
        for node in original:
            copy = reparsed.node(node.name)
            assert copy.gate_type is node.gate_type
            assert copy.fanin == node.fanin

    def test_roundtrip_with_constants(self):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("with_consts")
        circuit.add_input("a")
        circuit.add_const("one", 1)
        circuit.add_gate("y", GateType.AND, ["a", "one"])
        circuit.mark_output("y")
        reparsed = parse_verilog(write_verilog(circuit))
        assert reparsed.node("one").gate_type is GateType.CONST1

    def test_file_io(self, tmp_path):
        path = tmp_path / "c17.v"
        write_verilog(c17(), path)
        circuit = parse_verilog_file(path)
        assert len(circuit.gates) == 6
