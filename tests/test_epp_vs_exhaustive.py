"""EPP accuracy against exhaustive-vector ground truth.

On circuits *with* reconvergent fanout the EPP method is an approximation;
these tests bound its error on small random circuits where the exact
answer is enumerable.  The bounds are intentionally loose enough to be
stable across seeds yet tight enough that a broken rule or traversal fails
immediately (a broken engine typically shows errors of 0.3+).
"""

import statistics

import pytest

from repro.core.epp import EPPEngine
from repro.netlist.generate import random_combinational
from repro.probability.exact import exact_signal_probabilities

from tests.helpers import exhaustive_all_sites


@pytest.mark.parametrize("seed", range(6))
def test_mean_error_small_on_random_circuits(seed):
    circuit = random_combinational(7, 35, seed=seed)
    truth = exhaustive_all_sites(circuit)
    engine = EPPEngine(circuit)
    errors = [
        abs(engine.p_sensitized(site) - truth[site]) for site in circuit.gates
    ]
    assert statistics.mean(errors) < 0.08, statistics.mean(errors)
    assert max(errors) < 0.45, max(errors)


def test_aggregate_relative_difference_in_paper_band():
    """Across a batch of circuits the aggregate %Dif lands near the paper's
    single-digit range (their Table 2 average is 5.4%)."""
    total_abs = 0.0
    total_ref = 0.0
    for seed in range(8):
        circuit = random_combinational(8, 40, seed=100 + seed)
        truth = exhaustive_all_sites(circuit)
        engine = EPPEngine(circuit)
        for site in circuit.gates:
            total_abs += abs(engine.p_sensitized(site) - truth[site])
            total_ref += truth[site]
    pct_dif = 100.0 * total_abs / total_ref
    assert pct_dif < 15.0, pct_dif


def test_exact_signal_probs_tighten_or_match_accuracy():
    """Using exact (BDD) SPs for off-path signals shouldn't hurt on average."""
    deltas = []
    for seed in range(4):
        circuit = random_combinational(6, 30, seed=seed)
        truth = exhaustive_all_sites(circuit)
        default_engine = EPPEngine(circuit)
        exact_engine = EPPEngine(
            circuit, signal_probs=exact_signal_probabilities(circuit)
        )
        for site in circuit.gates:
            default_error = abs(default_engine.p_sensitized(site) - truth[site])
            exact_error = abs(exact_engine.p_sensitized(site) - truth[site])
            deltas.append(default_error - exact_error)
    assert statistics.mean(deltas) > -0.01  # exact SP at least as good on average


def test_epp_bounds_are_probabilities():
    for seed in range(4):
        circuit = random_combinational(6, 50, seed=200 + seed)
        engine = EPPEngine(circuit)
        for site in circuit.gates:
            value = engine.p_sensitized(site)
            assert -1e-9 <= value <= 1.0 + 1e-9
