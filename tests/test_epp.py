"""The EPP engine: golden values, exactness guarantees, engine behaviour."""

import pytest

from repro.core.epp import EPPEngine
from repro.errors import AnalysisError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.library import (
    FIGURE1_SIGNAL_PROBS,
    c17,
    figure1_circuit,
    parity_tree,
    s27,
)
from repro.probability import signal_probabilities

from tests.helpers import build_chain, exhaustive_p_sensitized


class TestFigure1Golden:
    def test_published_vector_at_H(self, fig1):
        sp = signal_probabilities(fig1, input_probs={**FIGURE1_SIGNAL_PROBS, "A": 0.5})
        engine = EPPEngine(fig1, signal_probs=sp)
        result = engine.node_epp("A")
        h = result.sink_values["H"]
        assert h.pa == pytest.approx(0.042, abs=1e-12)
        assert h.pa_bar == pytest.approx(0.392, abs=1e-12)
        assert h.p0 == pytest.approx(0.168, abs=1e-12)
        assert h.p1 == pytest.approx(0.398, abs=1e-12)
        assert result.p_sensitized == pytest.approx(0.434, abs=1e-12)

    def test_cone_size_recorded(self, fig1):
        engine = EPPEngine(fig1)
        assert engine.node_epp("A").cone_size == 4


class TestExactness:
    """EPP is exact when no on-path reconvergence exists."""

    def test_parity_tree_all_sites(self):
        circuit = parity_tree(8)
        engine = EPPEngine(circuit)
        for site in circuit.gates + circuit.inputs:
            assert engine.p_sensitized(site) == pytest.approx(
                exhaustive_p_sensitized(circuit, site), abs=1e-12
            )

    def test_inverting_chain(self):
        chain = build_chain(
            [GateType.NAND, GateType.NOR, GateType.NOT, GateType.AND, GateType.XNOR]
        )
        engine = EPPEngine(chain)
        for site in ["x"] + chain.gates:
            assert engine.p_sensitized(site) == pytest.approx(
                exhaustive_p_sensitized(chain, site), abs=1e-12
            )

    def test_site_at_primary_output_is_certainly_sensitized(self, c17_circuit):
        engine = EPPEngine(c17_circuit)
        assert engine.p_sensitized("N22") == pytest.approx(1.0)

    def test_unreachable_site_is_never_sensitized(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("dead", GateType.NOT, ["b"])
        circuit.add_gate("po", GateType.BUF, ["a"])
        circuit.mark_output("po")
        engine = EPPEngine(circuit)
        assert engine.p_sensitized("dead") == 0.0


class TestReconvergencePolarity:
    def test_polarity_tracking_cancels_equal_paths(self):
        """x feeds an XOR twice through buffers: the flip always cancels."""
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("b1", GateType.BUF, ["x"])
        circuit.add_gate("b2", GateType.BUF, ["x"])
        circuit.add_gate("out", GateType.XOR, ["b1", "b2"])
        circuit.mark_output("out")
        engine = EPPEngine(circuit)
        assert engine.p_sensitized("x") == pytest.approx(0.0)
        assert exhaustive_p_sensitized(circuit, "x") == 0.0

    def test_opposite_parity_reconvergence(self):
        """x and NOT(x) into XOR: output constant, flip still cancels."""
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("inv", GateType.NOT, ["x"])
        circuit.add_gate("out", GateType.XOR, ["x", "inv"])
        circuit.mark_output("out")
        engine = EPPEngine(circuit)
        assert engine.p_sensitized("x") == pytest.approx(0.0)

    def test_opposite_parity_and_reconvergence(self):
        """AND(x, NOT(x)) is constant 0; a flip on x can never reach out."""
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("inv", GateType.NOT, ["x"])
        circuit.add_gate("out", GateType.AND, ["x", "inv"])
        circuit.mark_output("out")
        engine = EPPEngine(circuit)
        assert engine.p_sensitized("x") == pytest.approx(0.0)
        assert exhaustive_p_sensitized(circuit, "x") == 0.0

    def test_polarity_blind_engine_gets_opposite_parity_wrong(self):
        """Without the a/ā split, AND(a, ā) wrongly propagates — the case
        the paper's polarity tracking exists to fix."""
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("inv", GateType.NOT, ["x"])
        circuit.add_gate("out", GateType.AND, ["x", "inv"])
        circuit.mark_output("out")
        blind = EPPEngine(circuit, track_polarity=False)
        assert blind.p_sensitized("x") > 0.5  # wrong, and that is the point

    def test_polarity_blind_agrees_on_trees(self):
        circuit = parity_tree(6)
        tracked = EPPEngine(circuit)
        blind = EPPEngine(circuit, track_polarity=False)
        for site in circuit.gates:
            assert blind.p_sensitized(site) == pytest.approx(
                tracked.p_sensitized(site), abs=1e-12
            )


class TestEngineBehaviour:
    def test_p_sensitized_matches_node_epp(self, c17_circuit):
        engine = EPPEngine(c17_circuit)
        for site in c17_circuit.gates:
            assert engine.p_sensitized(site) == pytest.approx(
                engine.node_epp(site).p_sensitized, abs=1e-12
            )

    def test_default_sites(self, s27_circuit):
        engine = EPPEngine(s27_circuit)
        assert set(engine.default_sites()) == set(s27_circuit.gates)
        with_state = engine.default_sites(include_state=True)
        assert "G5" in with_state
        with_inputs = engine.default_sites(include_inputs=True)
        assert "G0" in with_inputs

    def test_analyze_covers_default_sites(self, c17_circuit):
        engine = EPPEngine(c17_circuit)
        results = engine.analyze()
        assert set(results) == set(c17_circuit.gates)

    def test_analyze_sampling_deterministic(self, s27_circuit):
        engine = EPPEngine(s27_circuit)
        a = set(engine.analyze(sample=4, seed=11))
        b = set(engine.analyze(sample=4, seed=11))
        assert a == b
        assert len(a) == 4

    def test_incomplete_signal_probs_rejected(self, c17_circuit):
        with pytest.raises(AnalysisError, match="missing node"):
            EPPEngine(c17_circuit, signal_probs={"N1": 0.5})

    def test_out_of_range_signal_probs_rejected(self, c17_circuit):
        sp = signal_probabilities(c17_circuit)
        sp["N22"] = 1.7
        with pytest.raises(AnalysisError, match="out of"):
            EPPEngine(c17_circuit, signal_probs=sp)

    def test_unknown_site_rejected(self, c17_circuit):
        engine = EPPEngine(c17_circuit)
        with pytest.raises(AnalysisError):
            engine.p_sensitized("ghost")

    def test_scratch_state_isolated_between_sites(self, c17_circuit):
        """Interleaved queries give the same answers as fresh engines."""
        engine = EPPEngine(c17_circuit)
        interleaved = [engine.p_sensitized(s) for s in ("N10", "N11", "N10", "N16", "N11")]
        fresh = [EPPEngine(c17_circuit).p_sensitized(s) for s in ("N10", "N11", "N10", "N16", "N11")]
        assert interleaved == fresh

    def test_sequential_sites_see_ff_sinks(self, s27_circuit):
        engine = EPPEngine(s27_circuit)
        result = engine.node_epp("G12")
        # G12 reaches DFF D-drivers; sinks must include at least one of them.
        assert result.sink_values
        assert result.p_sensitized > 0.0

    def test_sp_method_passthrough(self, c17_circuit):
        engine = EPPEngine(c17_circuit, sp_method="exact")
        assert 0.0 <= engine.p_sensitized("N11") <= 1.0
