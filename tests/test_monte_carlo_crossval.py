"""Monte-Carlo cross-validation of EPP against seeded fault injection.

EPP's estimate of ``P_sensitized`` is checked against bit-parallel SEU
fault injection (:mod:`repro.sim.fault_sim` via
:class:`~repro.core.baseline.RandomSimulationEstimator`) on s27 (the real
embedded netlist) and s953.  Following the sequential-estimation
literature's discipline (Mendo 2009: probability estimates must come with
explicit trial-count/accuracy reasoning), the acceptance bound is split
into its two honest components instead of one hand-picked epsilon:

* a **sampling term** ``z * sqrt(p̂(1-p̂)/n)`` derived from the trial count
  ``n`` — the only part that shrinks with more vectors.  ``z = 5`` puts a
  single Gaussian tail at ~3e-7, so even union-bounded over every asserted
  site the noise term is essentially never the cause of a failure;
* a **model-bias allowance** for EPP's first-order reconvergence
  approximation, which no number of vectors removes.  The per-site
  allowance (0.40) carries 1.25x headroom over the worst deviation
  measured across both circuits (0.32, s27 ``G8``); the per-circuit mean
  and aggregate %Dif allowances are set the same way from measured values
  (s27: mean 0.13 / %Dif 18; s953: mean 0.035 / %Dif 8.1).

Every random draw — the Monte Carlo SP map, the site sample, the
fault-injection vector stream — descends from one seeded master generator
(the explicit ``rng`` plumbing of :mod:`repro.probability.monte_carlo`),
so the test is deterministic: same seed, same bits, no flakes.
"""

import math
import random

import pytest

from repro.core.baseline import RandomSimulationEstimator
from repro.core.epp import EPPEngine
from repro.netlist.generate import generate_iscas
from repro.netlist.library import s27
from repro.probability.monte_carlo import monte_carlo_signal_probabilities

#: Gaussian tail multiplier for the sampling term (see module docstring).
Z = 5.0

#: Model-bias allowances, measured-envelope x ~1.25 headroom.
PER_SITE_BIAS = 0.40
MEAN_BIAS = {"s27": 0.20, "s953": 0.08}
PCT_DIF_BOUND = {"s27": 30.0, "s953": 15.0}

MASTER_SEED = 20260728


def sampling_half_width(p_hat: float, n_vectors: int, z: float = Z) -> float:
    """Trial-count-derived half-width of the MC estimate's confidence bound.

    Normal-approximation interval with a variance floor of ``1/(4n)``
    (one observed success/failure), so degenerate all-0/all-1 counts never
    produce a zero-width bound.
    """
    variance = max(p_hat * (1.0 - p_hat), 0.25 / n_vectors)
    return z * math.sqrt(variance / n_vectors)


def crossval_setup(name: str, sp_vectors: int, master: random.Random):
    """(circuit, engine, sp) with every random bit drawn from ``master``."""
    circuit = s27() if name == "s27" else generate_iscas(name)
    sp = monte_carlo_signal_probabilities(circuit, n_vectors=sp_vectors, rng=master)
    engine = EPPEngine(circuit, signal_probs=sp)
    return circuit, engine, sp


@pytest.mark.parametrize(
    "name, n_vectors, n_sites",
    [("s27", 40_000, None), ("s953", 15_000, 30)],
)
def test_epp_within_confidence_bound_of_fault_injection(name, n_vectors, n_sites):
    master = random.Random(MASTER_SEED)
    circuit, engine, sp = crossval_setup(name, sp_vectors=20_000, master=master)

    sites = engine.default_sites()
    if n_sites is not None and n_sites < len(sites):
        sites = random.Random(master.getrandbits(32)).sample(sites, n_sites)

    estimator = RandomSimulationEstimator(
        circuit,
        n_vectors=n_vectors,
        seed=master.getrandbits(32),
        state_weights={ff: sp[ff] for ff in circuit.flip_flops},
    )
    reference = estimator.estimate(sites)

    deviations = []
    for site in sites:
        epp = engine.p_sensitized(site)
        noise = sampling_half_width(reference[site], n_vectors)
        deviation = abs(epp - reference[site])
        assert deviation <= PER_SITE_BIAS + noise, (
            f"{name}:{site} EPP {epp:.4f} vs MC {reference[site]:.4f} "
            f"(n={n_vectors}, noise half-width {noise:.4f})"
        )
        deviations.append(deviation)

    mean_noise = sum(
        sampling_half_width(reference[s], n_vectors) for s in sites
    ) / len(sites)
    mean_deviation = sum(deviations) / len(deviations)
    assert mean_deviation <= MEAN_BIAS[name] + mean_noise, mean_deviation

    total_ref = sum(reference[s] for s in sites)
    assert total_ref > 0.0
    pct_dif = 100.0 * sum(deviations) / total_ref
    assert pct_dif <= PCT_DIF_BOUND[name], pct_dif


def test_mc_noise_term_alone_explains_seed_to_seed_spread():
    """Two independent fault-injection runs must agree within the *pure*
    trial-count bound — no model bias involved, so this validates that the
    sampling term is sized correctly rather than doing silent work."""
    master = random.Random(MASTER_SEED + 1)
    circuit, engine, sp = crossval_setup("s953", sp_vectors=10_000, master=master)
    sites = random.Random(master.getrandbits(32)).sample(engine.default_sites(), 20)
    n_vectors = 8_000
    state_weights = {ff: sp[ff] for ff in circuit.flip_flops}
    runs = []
    for _ in range(2):
        estimator = RandomSimulationEstimator(
            circuit,
            n_vectors=n_vectors,
            seed=master.getrandbits(32),
            state_weights=state_weights,
        )
        runs.append(estimator.estimate(sites))
    for site in sites:
        spread = abs(runs[0][site] - runs[1][site])
        # Difference of two independent estimates: variances add.
        bound = math.sqrt(2.0) * sampling_half_width(runs[0][site], n_vectors)
        assert spread <= bound, (site, spread, bound)


def test_sharded_backend_inherits_the_same_crossval_envelope():
    """The cross-validation holds identically through the sharded driver —
    a cheap end-to-end check that process fan-out changes nothing about
    the semantics the MC oracle validates."""
    master = random.Random(MASTER_SEED + 2)
    circuit, engine, sp = crossval_setup("s953", sp_vectors=10_000, master=master)
    sites = random.Random(master.getrandbits(32)).sample(engine.default_sites(), 12)
    backend = engine.sharded_backend(jobs=2)
    backend.min_process_work = 0
    try:
        sharded = engine.analyze(sites=sites, backend="sharded", jobs=2)
    finally:
        backend.close()
    n_vectors = 10_000
    estimator = RandomSimulationEstimator(
        circuit,
        n_vectors=n_vectors,
        seed=master.getrandbits(32),
        state_weights={ff: sp[ff] for ff in circuit.flip_flops},
    )
    reference = estimator.estimate(sites)
    for site in sites:
        deviation = abs(sharded[site].p_sensitized - reference[site])
        assert deviation <= PER_SITE_BIAS + sampling_half_width(
            reference[site], n_vectors
        ), site
