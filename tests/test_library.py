"""Embedded reference circuits behave as documented."""

import pytest

from repro.errors import NetlistError
from repro.netlist.gate_types import GateType
from repro.netlist.library import (
    FIGURE1_EXPECTED,
    FIGURE1_SIGNAL_PROBS,
    counter,
    decoder,
    equality_comparator,
    figure1_circuit,
    full_adder,
    get_circuit,
    half_adder,
    list_circuits,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
    s27,
)
from repro.netlist.validate import validate_circuit
from repro.sim.logic_sim import simulate_sequential


class TestRegistry:
    def test_every_listed_circuit_builds_and_validates(self):
        for name in list_circuits():
            circuit = get_circuit(name)
            assert validate_circuit(circuit).ok, name

    def test_fresh_instances(self):
        assert get_circuit("c17") is not get_circuit("c17")

    def test_unknown_name(self):
        with pytest.raises(NetlistError, match="available"):
            get_circuit("s99999")


class TestFigure1:
    def test_structure(self):
        circuit = figure1_circuit()
        assert circuit.node("E").gate_type is GateType.NOT
        assert circuit.node("H").fanin == ("C", "D", "G")
        assert circuit.outputs == ["H"]

    def test_expected_constants_are_consistent(self):
        total = (
            FIGURE1_EXPECTED["pa"]
            + FIGURE1_EXPECTED["pa_bar"]
            + FIGURE1_EXPECTED["p0"]
            + FIGURE1_EXPECTED["p1"]
        )
        assert abs(total - 1.0) < 1e-12
        assert set(FIGURE1_SIGNAL_PROBS) == {"B", "C", "F"}


class TestArithmetic:
    def test_half_adder_truth(self):
        circuit = half_adder()
        for a in (0, 1):
            for b in (0, 1):
                values = circuit.evaluate({"a": a, "b": b})
                assert values["sum"] == (a + b) % 2
                assert values["carry"] == (a + b) // 2

    def test_full_adder_truth(self):
        circuit = full_adder()
        for pattern in range(8):
            a, b, cin = pattern & 1, (pattern >> 1) & 1, (pattern >> 2) & 1
            values = circuit.evaluate({"a": a, "b": b, "cin": cin})
            assert values["sum"] == (a + b + cin) % 2
            assert values["cout"] == (a + b + cin) // 2

    @pytest.mark.parametrize("width", [1, 3, 4])
    def test_ripple_adder_adds(self, width):
        circuit = ripple_carry_adder(width)
        for a in range(1 << width):
            for b in range(1 << width):
                assignment = {}
                for i in range(width):
                    assignment[f"a{i}"] = (a >> i) & 1
                    assignment[f"b{i}"] = (b >> i) & 1
                values = circuit.evaluate(assignment)
                total = sum(values[f"s{i}"] << i for i in range(width))
                total += values[f"c{width-1}"] << width
                assert total == a + b, (a, b)

    def test_adder_rejects_zero_width(self):
        with pytest.raises(NetlistError):
            ripple_carry_adder(0)


class TestCombinationalBlocks:
    @pytest.mark.parametrize("width", [1, 2, 5, 8])
    def test_parity(self, width):
        circuit = parity_tree(width)
        for pattern in range(1 << width):
            assignment = {f"x{i}": (pattern >> i) & 1 for i in range(width)}
            expected = bin(pattern).count("1") & 1
            assert circuit.evaluate(assignment)[circuit.outputs[0]] == expected

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_mux_tree_selects(self, bits):
        circuit = mux_tree(bits)
        n_data = 1 << bits
        for select in range(n_data):
            for hot in range(n_data):
                assignment = {f"s{i}": (select >> i) & 1 for i in range(bits)}
                assignment.update({f"d{i}": int(i == hot) for i in range(n_data)})
                out = circuit.evaluate(assignment)[circuit.outputs[0]]
                assert out == int(select == hot)

    def test_decoder_one_hot(self):
        circuit = decoder(3)
        for address in range(8):
            assignment = {f"a{i}": (address >> i) & 1 for i in range(3)}
            values = circuit.evaluate(assignment)
            for row in range(8):
                assert values[f"y{row}"] == int(row == address)

    def test_equality_comparator(self):
        circuit = equality_comparator(4)
        for a in range(16):
            for b in (a, (a + 5) % 16):
                assignment = {}
                for i in range(4):
                    assignment[f"a{i}"] = (a >> i) & 1
                    assignment[f"b{i}"] = (b >> i) & 1
                assert circuit.evaluate(assignment)["eq"] == int(a == b)


class TestCounter:
    def test_counts_with_enable(self):
        circuit = counter(3)
        trace = simulate_sequential(
            circuit, lambda cycle: {"en": 1 if cycle != 3 else 0}, cycles=6, width=1
        )
        values = []
        for t in range(6):
            values.append(sum(trace.word(t, f"q{i}") << i for i in range(3)))
        # stalls at cycle 3 (enable low), then resumes
        assert values == [0, 1, 2, 3, 3, 4]

    def test_wraps(self):
        circuit = counter(2)
        trace = simulate_sequential(circuit, lambda _: {"en": 1}, cycles=6, width=1)
        values = [
            sum(trace.word(t, f"q{i}") << i for i in range(2)) for t in range(6)
        ]
        assert values == [0, 1, 2, 3, 0, 1]

    def test_s27_next_state_spot_check(self):
        # One hand-computed transition: all-zero state, all-zero inputs.
        circuit = s27()
        values = circuit.evaluate(
            {"G0": 0, "G1": 0, "G2": 0, "G3": 0, "G5": 0, "G6": 0, "G7": 0}
        )
        # G14 = NOT(G0) = 1 -> G10 = NOR(G14, G11); G12 = NOR(G1,G7) = 1
        assert values["G14"] == 1
        assert values["G12"] == 1
        assert values["G13"] == 0  # NOR(G2=0, G12=1)
        assert values["G8"] == 0  # AND(G14=1, G6=0)
        assert values["G15"] == 1  # OR(G12=1, G8=0)
        assert values["G16"] == 0  # OR(G3=0, G8=0)
        assert values["G9"] == 1  # NAND(G16=0, G15=1)
        assert values["G11"] == 0  # NOR(G5=0, G9=1)
        assert values["G17"] == 1  # NOT(G11)
        assert values["G10"] == 0  # NOR(G14=1, G11=0)
