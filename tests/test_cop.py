"""COP observability baseline, and its relationship to EPP."""

import statistics

import pytest

from repro.core.epp import EPPEngine
from repro.errors import ProbabilityError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import random_combinational
from repro.netlist.library import c17, parity_tree, s27
from repro.probability.cop import cop_observability

from tests.helpers import exhaustive_all_sites


class TestBasics:
    def test_sinks_have_observability_one(self, c17_circuit):
        obs = cop_observability(c17_circuit)
        assert obs["N22"] == 1.0
        assert obs["N23"] == 1.0

    def test_dff_d_driver_is_a_sink(self, s27_circuit):
        obs = cop_observability(s27_circuit)
        assert obs["G10"] == 1.0  # drives DFF G5 only

    def test_unreachable_node_is_zero(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("dead", GateType.NOT, ["b"])
        circuit.add_gate("po", GateType.BUF, ["a"])
        circuit.mark_output("po")
        obs = cop_observability(circuit)
        assert obs["dead"] == 0.0
        assert obs["b"] == 0.0

    def test_values_are_probabilities(self, s27_circuit):
        obs = cop_observability(s27_circuit)
        assert all(0.0 <= value <= 1.0 for value in obs.values())

    def test_missing_signal_probs_rejected(self, c17_circuit):
        with pytest.raises(ProbabilityError, match="missing node"):
            cop_observability(c17_circuit, signal_probs={"N1": 0.5})


class TestAgainstGroundTruth:
    def test_exact_on_fanout_free_tree(self):
        """Without fanout, COP's independence assumptions all hold."""
        circuit = parity_tree(8)
        truth = exhaustive_all_sites(circuit)
        obs = cop_observability(circuit)
        for site, value in truth.items():
            assert obs[site] == pytest.approx(value, abs=1e-12), site

    def test_exact_on_single_and_chain(self):
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_input("s0")
        circuit.add_input("s1")
        circuit.add_gate("g0", GateType.AND, ["x", "s0"])
        circuit.add_gate("g1", GateType.OR, ["g0", "s1"])
        circuit.mark_output("g1")
        truth = exhaustive_all_sites(circuit)
        obs = cop_observability(circuit)
        for site in circuit.gates:
            assert obs[site] == pytest.approx(truth[site], abs=1e-12)

    def test_epp_is_at_least_as_accurate_on_average(self):
        """EPP = COP + polarity + per-site structural awareness; over a
        batch of reconvergent circuits it must not lose to COP."""
        cop_errors = []
        epp_errors = []
        for seed in range(6):
            circuit = random_combinational(7, 40, seed=300 + seed)
            truth = exhaustive_all_sites(circuit)
            obs = cop_observability(circuit)
            engine = EPPEngine(circuit)
            for site, value in truth.items():
                cop_errors.append(abs(obs[site] - value))
                epp_errors.append(abs(engine.p_sensitized(site) - value))
        assert statistics.mean(epp_errors) <= statistics.mean(cop_errors) + 0.005

    def test_mux_pin_formulas(self):
        circuit = Circuit()
        for name in ("s", "a", "b"):
            circuit.add_input(name)
        circuit.add_gate("m", GateType.MUX, ["s", "a", "b"])
        circuit.mark_output("m")
        truth = {
            site: value
            for site, value in (
                ("s", exhaustive_all_sites_input(circuit, "s")),
                ("a", exhaustive_all_sites_input(circuit, "a")),
                ("b", exhaustive_all_sites_input(circuit, "b")),
            )
        }
        obs = cop_observability(circuit)
        for site, value in truth.items():
            assert obs[site] == pytest.approx(value, abs=1e-12), site

    def test_maj_generic_pin_formula(self):
        circuit = Circuit()
        for name in ("a", "b", "c"):
            circuit.add_input(name)
        circuit.add_gate("m", GateType.MAJ, ["a", "b", "c"])
        circuit.mark_output("m")
        obs = cop_observability(circuit)
        # Pin a of MAJ3 is decisive iff b != c: probability 1/2.
        assert obs["a"] == pytest.approx(0.5)


def exhaustive_all_sites_input(circuit, site):
    from tests.helpers import exhaustive_p_sensitized

    return exhaustive_p_sensitized(circuit, site)
