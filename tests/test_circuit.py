"""Circuit container: construction, queries, topology, compiled views."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit, Node
from repro.netlist.gate_types import GateType


def tiny():
    circuit = Circuit("tiny")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("g", GateType.AND, ["a", "b"])
    circuit.mark_output("g")
    return circuit


class TestConstruction:
    def test_duplicate_name_rejected(self):
        circuit = tiny()
        with pytest.raises(NetlistError, match="duplicate"):
            circuit.add_input("a")

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Circuit().add_input("")

    def test_string_gate_type_accepted(self):
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("y", "not", ["x"])
        assert circuit.node("y").gate_type is GateType.NOT

    def test_unknown_string_gate_type(self):
        circuit = Circuit()
        circuit.add_input("x")
        with pytest.raises(NetlistError, match="unknown gate type"):
            circuit.add_gate("y", "frobnicate", ["x"])

    def test_add_gate_rejects_non_combinational(self):
        circuit = Circuit()
        with pytest.raises(NetlistError, match="not a combinational"):
            circuit.add_gate("q", GateType.DFF, ["x"])

    def test_const_values(self):
        circuit = Circuit()
        circuit.add_const("zero", 0)
        circuit.add_const("one", 1)
        assert circuit.node("zero").gate_type is GateType.CONST0
        assert circuit.node("one").gate_type is GateType.CONST1
        with pytest.raises(NetlistError):
            circuit.add_const("two", 2)

    def test_node_arity_enforced_at_construction(self):
        with pytest.raises(NetlistError):
            Node("bad", GateType.NOT, ("a", "b"))

    def test_forward_references_allowed(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g1", GateType.NOT, ["g2"])  # g2 defined later
        circuit.add_gate("g2", GateType.BUF, ["a"])
        circuit.mark_output("g1")
        assert circuit.topological_order().index("g2") < circuit.topological_order().index("g1")


class TestQueries:
    def test_membership_and_len(self):
        circuit = tiny()
        assert "g" in circuit
        assert "nope" not in circuit
        assert len(circuit) == 3

    def test_unknown_node_raises_with_name(self):
        with pytest.raises(NetlistError, match="ghost"):
            tiny().node("ghost")

    def test_role_lists(self):
        circuit = tiny()
        circuit.add_dff("q", "g")
        assert circuit.inputs == ["a", "b"]
        assert circuit.outputs == ["g"]
        assert circuit.flip_flops == ["q"]
        assert circuit.gates == ["g"]
        assert circuit.is_sequential

    def test_mark_output_idempotent(self):
        circuit = tiny()
        circuit.mark_output("g")
        assert circuit.outputs == ["g"]

    def test_fanout_map(self):
        circuit = tiny()
        fanout = circuit.fanout_map()
        assert fanout["a"] == ["g"]
        assert fanout["g"] == []

    def test_repr_mentions_counts(self):
        assert "2 PI" in repr(tiny())


class TestMutation:
    def test_remove_leaf_node(self):
        circuit = tiny()
        circuit.add_gate("dead", GateType.NOT, ["a"])
        circuit.remove_node("dead")
        assert "dead" not in circuit

    def test_remove_driving_node_rejected(self):
        circuit = tiny()
        with pytest.raises(NetlistError, match="still drives"):
            circuit.remove_node("a")

    def test_replace_fanin(self):
        circuit = tiny()
        circuit.add_input("c")
        circuit.replace_fanin("g", "b", "c")
        assert circuit.node("g").fanin == ("a", "c")

    def test_replace_fanin_unknown_pin(self):
        circuit = tiny()
        with pytest.raises(NetlistError, match="not a fanin"):
            circuit.replace_fanin("g", "zzz", "a")

    def test_mutation_invalidates_compiled_cache(self):
        circuit = tiny()
        before = circuit.compiled()
        circuit.add_gate("h", GateType.NOT, ["g"])
        after = circuit.compiled()
        assert after is not before
        assert after.n == before.n + 1

    def test_compiled_cache_reused_when_unchanged(self):
        circuit = tiny()
        assert circuit.compiled() is circuit.compiled()


class TestTopology:
    def test_drivers_precede_users(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("n1", GateType.NOT, ["a"])
        circuit.add_gate("n2", GateType.NOT, ["n1"])
        circuit.add_gate("n3", GateType.AND, ["n1", "n2"])
        circuit.mark_output("n3")
        order = circuit.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for node in circuit:
            for driver in node.fanin:
                assert position[driver] < position[node.name]

    def test_levels_and_depth(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("n1", GateType.NOT, ["a"])
        circuit.add_gate("n2", GateType.NOT, ["n1"])
        circuit.mark_output("n2")
        levels = circuit.levels()
        assert levels == {"a": 0, "n1": 1, "n2": 2}
        assert circuit.depth() == 2

    def test_duplicate_driver_is_not_a_cycle(self):
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("g", GateType.AND, ["x", "x"])
        circuit.mark_output("g")
        assert circuit.topological_order() == ["x", "g"]

    def test_combinational_cycle_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("p", GateType.AND, ["a", "q"])
        circuit.add_gate("q", GateType.AND, ["a", "p"])
        circuit.mark_output("p")
        with pytest.raises(NetlistError, match="cycle"):
            circuit.compiled()

    def test_cycle_through_dff_is_legal(self):
        circuit = Circuit()
        circuit.add_input("en")
        circuit.add_gate("d", GateType.XOR, ["q", "en"])
        circuit.add_dff("q", "d")
        circuit.mark_output("q")
        order = circuit.topological_order()
        assert order.index("q") < order.index("d")

    def test_unknown_driver_reported_at_compile(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["missing"])
        circuit.mark_output("g")
        with pytest.raises(NetlistError, match="missing"):
            circuit.compiled()


class TestCompiledView:
    def test_csr_fanin_preserves_pin_order(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("m", GateType.MUX, ["b", "a", "b"])
        circuit.mark_output("m")
        compiled = circuit.compiled()
        pins = [compiled.names[i] for i in compiled.fanin(compiled.index["m"])]
        assert pins == ["b", "a", "b"]

    def test_fanout_deduplicated(self):
        circuit = Circuit()
        circuit.add_input("x")
        circuit.add_gate("g", GateType.AND, ["x", "x"])
        circuit.mark_output("g")
        compiled = circuit.compiled()
        assert compiled.fanout(compiled.index["x"]) == [compiled.index["g"]]

    def test_sink_ids_cover_outputs_and_dff_drivers(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g1", GateType.NOT, ["a"])
        circuit.add_gate("g2", GateType.NOT, ["g1"])
        circuit.add_dff("q", "g2")
        circuit.mark_output("g1")
        compiled = circuit.compiled()
        sinks = {compiled.names[i] for i in compiled.sink_ids}
        assert sinks == {"g1", "g2"}

    def test_is_source_counts_dff(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_dff("q", "a")
        circuit.mark_output("q")
        compiled = circuit.compiled()
        assert compiled.is_source(compiled.index["q"])
        assert compiled.is_source(compiled.index["a"])


class TestEvaluate:
    def test_and_gate(self):
        circuit = tiny()
        assert circuit.evaluate({"a": 1, "b": 1})["g"] == 1
        assert circuit.evaluate({"a": 1, "b": 0})["g"] == 0

    def test_missing_input_rejected(self):
        with pytest.raises(NetlistError, match="missing input"):
            tiny().evaluate({"a": 1})

    def test_sequential_needs_state(self):
        circuit = tiny()
        circuit.add_dff("q", "g")
        with pytest.raises(NetlistError, match="DFF"):
            circuit.evaluate({"a": 0, "b": 0})
        values = circuit.evaluate({"a": 0, "b": 0, "q": 1})
        assert values["q"] == 1

    def test_non_binary_value_rejected(self):
        with pytest.raises(NetlistError, match="0/1"):
            tiny().evaluate({"a": 2, "b": 0})

    def test_copy_is_independent(self):
        circuit = tiny()
        clone = circuit.copy("clone")
        clone.add_gate("extra", GateType.NOT, ["a"])
        assert "extra" not in circuit
        assert clone.name == "clone"
