"""Multi-cycle fault simulation, and validation of the analytical DP."""

import pytest

from repro.core.analysis import SERAnalyzer
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.library import c17, counter, s27
from repro.ser.latching import LatchingModel
from repro.sim.seq_fault_sim import MultiCycleFaultSimulator

from tests.helpers import exhaustive_p_sensitized


class TestSingleCycle:
    def test_combinational_matches_exhaustive(self, c17_circuit):
        simulator = MultiCycleFaultSimulator(c17_circuit, seed=1)
        for site in ("N10", "N11", "N16"):
            truth = exhaustive_p_sensitized(c17_circuit, site)
            estimate = simulator.p_observed(site, cycles=1, n_vectors=30_000)
            assert estimate == pytest.approx(truth, abs=0.02), site

    def test_extra_cycles_change_nothing_for_combinational(self, c17_circuit):
        # Single batch (n_vectors == word_width) so both runs inject against
        # the same cycle-0 vectors; extra cycles then cannot add detections
        # in a circuit without state.
        simulator = MultiCycleFaultSimulator(c17_circuit, seed=2, word_width=256)
        one = simulator.p_observed("N11", cycles=1, n_vectors=256)
        simulator2 = MultiCycleFaultSimulator(c17_circuit, seed=2, word_width=256)
        three = simulator2.p_observed("N11", cycles=3, n_vectors=256)
        assert one == pytest.approx(three, abs=1e-12)

    def test_ff_divergence_alone_is_not_detection(self):
        """A site feeding only a flip-flop is invisible within one cycle."""
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["a"])
        circuit.add_dff("q", "g")
        circuit.add_gate("po", GateType.BUF, ["q"])
        circuit.mark_output("po")
        simulator = MultiCycleFaultSimulator(circuit, seed=3)
        assert simulator.p_observed("g", cycles=1, n_vectors=512) == 0.0
        # ... but the corrupted state surfaces the very next cycle.
        assert simulator.p_observed("g", cycles=2, n_vectors=512) == 1.0


class TestMultiCycle:
    def test_monotone_in_cycles(self, s27_circuit):
        simulator = MultiCycleFaultSimulator(s27_circuit, seed=4)
        values = [
            simulator.p_observed("G12", cycles=c, n_vectors=4096) for c in (1, 2, 3, 4)
        ]
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 0.02  # MC noise allowance

    def test_state_site_injection(self, s27_circuit):
        simulator = MultiCycleFaultSimulator(s27_circuit, seed=5)
        # G5 is a DFF output: flipping the state bit at cycle 0.
        value = simulator.p_observed("G5", cycles=3, n_vectors=4096)
        assert 0.0 < value <= 1.0

    def test_validates_arguments(self, s27_circuit):
        simulator = MultiCycleFaultSimulator(s27_circuit, seed=0)
        with pytest.raises(SimulationError):
            simulator.p_observed("G12", cycles=0)
        with pytest.raises(SimulationError):
            simulator.p_observed("ghost", cycles=1)
        with pytest.raises(SimulationError):
            simulator.p_observed("G12", cycles=1, n_vectors=0)
        with pytest.raises(SimulationError):
            MultiCycleFaultSimulator(s27_circuit, word_width=0)


class TestAnalyticalModelValidation:
    """The SERAnalyzer multi-cycle DP against simulation ground truth.

    The DP assumes perfect capture (compare with p_latched=1), independent
    captures and single-cycle persistence; agreement is approximate but
    must be in the same band and ordered the same way.
    """

    def test_dp_tracks_simulation_on_s27(self, s27_circuit):
        analyzer = SERAnalyzer(
            s27_circuit, latching_model=LatchingModel(
                clock_period=1e-9, window=0.0, nominal_pulse_width=1e-9
            )
        )  # p_latched == 1: every captured error persists
        simulator = MultiCycleFaultSimulator(s27_circuit, seed=6)
        for site in ("G9", "G12", "G14"):
            dp = analyzer.multi_cycle_observability(site, cycles=3)
            mc = simulator.p_observed(site, cycles=3, n_vectors=8192)
            assert dp == pytest.approx(mc, abs=0.2), site

    def test_dp_and_simulation_agree_on_zero(self):
        """A site that can never reach a PO is zero in both views."""
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("dead_src", GateType.NOT, ["a"])
        circuit.add_dff("dead_q", "dead_src")
        circuit.add_gate("sink_gate", GateType.BUF, ["dead_q"])
        circuit.add_dff("dead_q2", "sink_gate")  # state loop, never a PO
        circuit.add_gate("po", GateType.BUF, ["a"])
        circuit.mark_output("po")
        analyzer = SERAnalyzer(circuit)
        simulator = MultiCycleFaultSimulator(circuit, seed=7)
        assert analyzer.multi_cycle_observability("dead_src", cycles=4) == 0.0
        assert simulator.p_observed("dead_src", cycles=4, n_vectors=256) == 0.0
