"""Incremental what-if analysis: staleness guards, edit sets, dirty sets, splicing.

The tentpole invariant under test: ``analyze_delta(prev, edits)`` is
``np.array_equal`` — bit-identical, not merely close — to a full
``snapshot`` of the edited circuit, across every backend tier (vector,
sharded, compact/full rows), because retained columns are spliced
byte-for-byte and dirty columns run through the very same sweep.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.analysis import SERAnalyzer
from repro.core.epp import EPPEngine
from repro.core.epp_delta import EditSet, dirty_mask, edit_impact
from repro.errors import AnalysisError, NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import random_combinational
from repro.netlist.library import c17, s27


def assert_bit_identical(delta, full):
    assert delta.site_names == full.site_names
    for left, right in zip(delta.packed, full.packed):
        assert np.array_equal(left, right)


def full_resnapshot(delta):
    """A from-scratch snapshot of the delta's own circuit revision."""
    return delta.engine.snapshot(
        sites=None if delta.default_sites else delta.site_names,
        **delta.knobs,
    )


# ------------------------------------------------------------------ staleness


class TestStalenessGuard:
    """Mutating a circuit under a live engine must raise, not mis-answer.

    Each test first *reproduces the stale read* the guard exists for:
    before the guard, the engine kept answering from its build-time
    compiled snapshot, returning numerically plausible values for the
    pre-edit netlist.
    """

    def test_replace_gate_invalidates_queries(self):
        circuit = c17()
        engine = EPPEngine(circuit)
        before = engine.p_sensitized("N10")
        # Swapping N16 changes its SP, which N10's error reads off-path
        # at N22 = NAND(N10, N16): the pre-edit answer IS stale.
        circuit.replace_gate("N16", "nor")
        assert EPPEngine(circuit).p_sensitized("N10") != pytest.approx(before)
        with pytest.raises(AnalysisError, match="mutated after"):
            engine.p_sensitized("N10")

    def test_mark_output_invalidates_queries(self):
        circuit = c17()
        engine = EPPEngine(circuit)
        engine.node_epp("N10")
        circuit.mark_output("N10")
        with pytest.raises(AnalysisError, match="mutated after"):
            engine.node_epp("N10")

    def test_replace_fanin_invalidates_analyze(self):
        circuit = c17()
        engine = EPPEngine(circuit)
        engine.analyze()
        circuit.replace_fanin("N22", "N10", "N1")
        with pytest.raises(AnalysisError, match="mutated after"):
            engine.analyze()

    def test_mutation_invalidates_snapshot(self):
        circuit = c17()
        engine = EPPEngine(circuit)
        circuit.add_gate("extra", GateType.NOT, ["N1"])
        with pytest.raises(AnalysisError, match="mutated after"):
            engine.snapshot()

    def test_every_mutator_bumps_the_token(self):
        circuit = c17()
        seen = {circuit.mutation_token}

        def bumped():
            token = circuit.mutation_token
            assert token not in seen, "mutator did not bump mutation_token"
            seen.add(token)

        circuit.add_gate("t1", GateType.NOT, ["N1"])
        bumped()
        circuit.replace_gate("t1", "buf")
        bumped()
        circuit.replace_fanin("t1", "N1", "N2")
        bumped()
        circuit.mark_output("t1")
        bumped()
        circuit.add_input("t2")
        bumped()
        circuit.add_dff("t3", "t1")
        bumped()

    def test_rebuilt_engine_answers(self):
        circuit = c17()
        engine = EPPEngine(circuit)
        circuit.replace_gate("N10", "nor")
        with pytest.raises(AnalysisError):
            engine.p_sensitized("N10")
        assert 0.0 <= EPPEngine(circuit).p_sensitized("N10") <= 1.0

    def test_error_message_points_to_analyze_delta(self):
        circuit = c17()
        engine = EPPEngine(circuit)
        circuit.mark_output("N10")
        with pytest.raises(AnalysisError, match="analyze_delta"):
            engine.analyze()


# ------------------------------------------------------------------- edit set


class TestEditSet:
    def test_fluent_and_counts(self):
        edits = (
            EditSet()
            .replace_gate("g", "nand")
            .set_sp("a", 0.25)
            .harden("g", 4.0)
            .tmr("h")
        )
        assert len(edits) == 4
        assert edits.structural_ops == 2  # set_sp/harden are metadata-only

    def test_set_sp_out_of_range(self):
        with pytest.raises(AnalysisError, match="out of"):
            EditSet().set_sp("a", 1.5)

    def test_harden_needs_factor_above_one(self):
        with pytest.raises(AnalysisError, match="must be > 1"):
            EditSet().harden("g", 1.0)

    def test_tmr_needs_names(self):
        with pytest.raises(AnalysisError, match="at least one"):
            EditSet().tmr()

    def test_apply_never_mutates_the_original(self):
        circuit = c17()
        token = circuit.mutation_token
        edited, touched = EditSet().replace_gate("N10", "nor").apply(circuit)
        assert circuit.mutation_token == token
        assert circuit.node("N10").gate_type is GateType.NAND
        assert edited.node("N10").gate_type is GateType.NOR
        assert touched == {"N10"}

    def test_touched_is_exactly_the_edited_nodes(self):
        circuit = c17()
        edited, touched = (
            EditSet()
            .rewire("N22", "N10", "N16")
            .add_gate("extra", GateType.AND, ["N1", "N2"])
            .mark_output("extra")
            .apply(circuit)
        )
        # Fanins of edited nodes are NOT touched: reverse reachability
        # follows each side's own edges, so seeding them would only
        # inflate the dirty set.
        assert touched == {"N22", "extra"}

    def test_tmr_touches_replicas_and_aliases_their_sp(self):
        circuit = c17()
        edits = EditSet().tmr("N10")
        edited, touched = edits.apply(circuit)
        assert "N10" in touched and len(touched) == 4
        replicas = sorted(touched - {"N10"})
        assert edited.node("N10").gate_type is GateType.MAJ
        for replica in replicas:
            assert edits.sp_aliases[replica] == "N10"
            assert edited.node(replica).gate_type is GateType.NAND

    def test_remove_node_requires_it_unused(self):
        circuit = c17()
        with pytest.raises(NetlistError, match="still drives"):
            EditSet().remove_node("N10").apply(circuit)

    def test_sp_override_must_name_a_surviving_node(self):
        circuit = c17()
        with pytest.raises(NetlistError, match="unknown node"):
            EditSet().set_sp("ghost", 0.5).apply(circuit)

    def test_harden_unknown_node_rejected(self):
        with pytest.raises(NetlistError):
            EditSet().harden("ghost", 2.0).apply(c17())


# ----------------------------------------------------------------- dirty mask


class TestDirtyMask:
    def build_chain(self):
        """a -> g1 -> g2 -> g3 -> out, with a side PO on g1."""
        circuit = Circuit("chain")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g1", GateType.AND, ["a", "b"])
        circuit.add_gate("g2", GateType.NOT, ["g1"])
        circuit.add_gate("g3", GateType.OR, ["g2", "b"])
        circuit.mark_output("g1")
        circuit.mark_output("g3")
        return circuit

    def test_structural_edit_dirties_upstream_not_downstream(self):
        compiled = self.build_chain().compiled()
        mask = dirty_mask(compiled, {"g2"})
        flags = {compiled.names[i]: bool(mask[i]) for i in range(compiled.n)}
        # g2's column changes; anything whose cone contains g2 (g1, a, b)
        # changes; g3 is merely *downstream* -- its cone never contains
        # g2, so its column only reads g2's SP, which is handled by the
        # SP diff, not the structural seed.
        assert flags["g2"] and flags["g1"] and flags["a"] and flags["b"]
        assert not flags["g3"]

    def test_sp_change_dirties_users_and_upstream(self):
        compiled = self.build_chain().compiled()
        mask = dirty_mask(compiled, set(), {"g1"})
        flags = {compiled.names[i]: bool(mask[i]) for i in range(compiled.n)}
        # g2 *reads* g1's SP as an on/off-path value -> dirty; and
        # everything reaching g2 follows.
        assert flags["g1"] and flags["g2"] and flags["a"] and flags["b"]
        assert not flags["g3"]

    def test_dff_edit_seeds_the_d_driver(self):
        circuit = Circuit("seq")
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["a"])
        circuit.add_dff("q", "g")
        circuit.mark_output("q")
        compiled = circuit.compiled()
        mask = dirty_mask(compiled, {"q"})
        flags = {compiled.names[i]: bool(mask[i]) for i in range(compiled.n)}
        # Cones stop at D pins, so reachability alone would never reach
        # the DFF; the D driver is seeded explicitly (its sink list
        # derives from the DFF).
        assert flags["g"] and flags["a"]

    def test_unknown_names_ignored(self):
        compiled = self.build_chain().compiled()
        mask = dirty_mask(compiled, {"only_on_the_other_side"}, {"ghost"})
        assert not any(mask)


# --------------------------------------------------------------- bit identity

#: The backend tiers the acceptance criteria pin: default vector, both
#: row layouts, and the sharded pool.
TIERS = [
    {},
    {"rows": "compact"},
    {"rows": "full", "schedule": "input"},
    {"backend": "sharded", "jobs": 2},
]


class TestBitIdentity:
    @pytest.mark.parametrize("knobs", TIERS)
    def test_single_gate_swap(self, knobs):
        circuit = random_combinational(6, 60, seed=11)
        engine = EPPEngine(circuit)
        prev = engine.snapshot(**knobs)
        target = circuit.gates[len(circuit.gates) // 2]
        delta = engine.analyze_delta(prev, EditSet().replace_gate(target, "xor"))
        assert delta.stats["dirty"] + delta.stats["reused"] == delta.stats["sites"]
        assert_bit_identical(delta, full_resnapshot(delta))

    @pytest.mark.parametrize("knobs", TIERS)
    def test_structural_mix(self, knobs):
        circuit = random_combinational(6, 40, seed=23)
        engine = EPPEngine(circuit)
        prev = engine.snapshot(**knobs)
        gates = circuit.gates
        edits = (
            EditSet()
            .replace_gate(gates[5], "nor")
            .add_gate("extra", GateType.AND, [gates[0], gates[1]])
            .mark_output("extra")
            .tmr(gates[-1])
        )
        delta = engine.analyze_delta(prev, edits)
        assert_bit_identical(delta, full_resnapshot(delta))

    def test_cone_shrink_and_grow(self):
        circuit = random_combinational(6, 40, seed=7)
        engine = EPPEngine(circuit)
        prev = engine.snapshot()
        wide = next(
            name for name in circuit.gates
            if len(circuit.node(name).fanin) >= 3
            and circuit.node(name).gate_type
            in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR)
        )
        shrunk = engine.analyze_delta(
            prev, EditSet().replace_gate(wide, fanin=circuit.node(wide).fanin[:2])
        )
        assert_bit_identical(shrunk, full_resnapshot(shrunk))
        narrow = next(
            name for name in shrunk.engine.circuit.gates
            if len(shrunk.engine.circuit.node(name).fanin) == 2
            and shrunk.engine.circuit.node(name).gate_type
            in (GateType.AND, GateType.OR)
        )
        grown_fanin = shrunk.engine.circuit.node(narrow).fanin + (
            shrunk.engine.circuit.inputs[0],
        )
        grown = shrunk.apply(EditSet().replace_gate(narrow, fanin=grown_fanin))
        assert_bit_identical(grown, full_resnapshot(grown))

    def test_chained_deltas(self):
        circuit = s27()
        engine = EPPEngine(circuit)
        prev = engine.snapshot()
        d1 = engine.analyze_delta(prev, EditSet().tmr("G10"))
        d2 = d1.apply(EditSet().set_sp("G0", 0.3))
        d3 = d2.apply(EditSet().replace_gate("G11", "or"))
        assert d3.stats["chain_length"] == 3
        assert_bit_identical(d3, full_resnapshot(d3))

    def test_empty_edit_set_reuses_everything(self):
        engine = EPPEngine(c17())
        prev = engine.snapshot()
        delta = engine.analyze_delta(prev, EditSet())
        assert delta.stats["dirty"] == 0
        assert delta.stats["reused"] == delta.stats["sites"]
        assert_bit_identical(delta, full_resnapshot(delta))

    def test_harden_only_edit_resweeps_nothing(self):
        engine = EPPEngine(c17())
        prev = engine.snapshot()
        delta = engine.analyze_delta(prev, EditSet().harden("N10", 10.0))
        assert delta.stats["dirty"] == 0
        chained = delta.apply(EditSet().harden("N10", 2.0))
        assert chained.hardening["N10"] == pytest.approx(20.0)
        assert_bit_identical(chained, full_resnapshot(chained))

    def test_scalar_oracle_agreement(self):
        engine = EPPEngine(s27())
        prev = engine.snapshot()
        delta = engine.analyze_delta(prev, EditSet().replace_gate("G10", "nor"))
        for name, value in zip(delta.site_names, delta.p_sensitized):
            assert value == pytest.approx(
                delta.engine.p_sensitized(name), abs=1e-9
            ), name

    def test_explicit_site_list_is_preserved(self):
        engine = EPPEngine(c17())
        sites = ["N22", "N10"]
        prev = engine.snapshot(sites=sites)
        assert not prev.default_sites
        delta = engine.analyze_delta(prev, EditSet().replace_gate("N16", "nor"))
        assert delta.site_names == sites
        full = delta.engine.snapshot(sites=sites)
        assert_bit_identical(delta, full)

    def test_default_sites_rederived_after_add(self):
        engine = EPPEngine(c17())
        prev = engine.snapshot()
        delta = engine.analyze_delta(
            prev,
            EditSet().add_gate("extra", GateType.AND, ["N1", "N2"]).mark_output(
                "extra"
            ),
        )
        assert "extra" in delta.site_names
        assert_bit_identical(delta, full_resnapshot(delta))

    def test_removed_site_drops_from_retained_list(self):
        circuit = c17()
        circuit.add_gate("spare", GateType.NOT, ["N1"])
        circuit.mark_output("spare")
        engine = EPPEngine(circuit)
        prev = engine.snapshot(sites=["N22", "spare"])
        dropped = engine.analyze_delta(prev, EditSet().remove_node("spare"))
        assert dropped.site_names == ["N22"]
        assert_bit_identical(dropped, dropped.engine.snapshot(sites=["N22"]))

    def test_wrong_engine_rejected(self):
        engine_a = EPPEngine(c17())
        engine_b = EPPEngine(c17())
        prev = engine_a.snapshot()
        with pytest.raises(AnalysisError, match="different engine"):
            engine_b.analyze_delta(prev, EditSet())

    def test_scalar_backend_rejected(self):
        engine = EPPEngine(c17())
        with pytest.raises(AnalysisError, match="scalar"):
            engine.snapshot(backend="scalar")

    def test_unknown_knob_rejected(self):
        engine = EPPEngine(c17())
        prev = engine.snapshot()
        with pytest.raises(AnalysisError, match="unknown analysis knob"):
            engine.analyze_delta(prev, EditSet(), bogus=1)

    def test_knob_override_merges_per_key(self):
        engine = EPPEngine(c17())
        prev = engine.snapshot(rows="compact", schedule="cone")
        delta = engine.analyze_delta(
            prev, EditSet().replace_gate("N10", "nor"), rows="full"
        )
        assert delta.knobs["rows"] == "full"
        assert delta.knobs["schedule"] == "cone"  # untouched keys survive
        assert_bit_identical(delta, full_resnapshot(delta))

    def test_edit_impact_matches_analyze_delta(self):
        circuit = random_combinational(6, 60, seed=3)
        engine = EPPEngine(circuit)
        prev = engine.snapshot()
        edits = EditSet().replace_gate(circuit.gates[-1], "xnor")
        impact = edit_impact(prev, edits)
        delta = engine.analyze_delta(prev, edits)
        assert impact["dirty"] == delta.stats["dirty"]
        assert impact["reused"] == delta.stats["reused"]
        assert impact["sites"] == delta.stats["sites"]


class TestUserSuppliedSP:
    def make_engine(self):
        circuit = c17()
        base = EPPEngine(circuit)
        user_sp = {
            base.compiled.names[i]: base._sp[i] for i in range(base.compiled.n)
        }
        return circuit, EPPEngine(circuit, signal_probs=user_sp)

    def test_new_node_without_sp_is_an_error(self):
        _, engine = self.make_engine()
        prev = engine.snapshot()
        with pytest.raises(AnalysisError, match="set_sp"):
            engine.analyze_delta(
                prev, EditSet().add_gate("extra", GateType.AND, ["N1", "N2"])
            )

    def test_new_node_with_set_sp_works(self):
        _, engine = self.make_engine()
        prev = engine.snapshot()
        delta = engine.analyze_delta(
            prev,
            EditSet()
            .add_gate("extra", GateType.AND, ["N1", "N2"])
            .mark_output("extra")
            .set_sp("extra", 0.25),
        )
        assert_bit_identical(delta, full_resnapshot(delta))

    def test_tmr_replicas_inherit_sp_via_alias(self):
        _, engine = self.make_engine()
        prev = engine.snapshot()
        # No set_sp for the replicas: they inherit N10's user SP.
        delta = engine.analyze_delta(prev, EditSet().tmr("N10"))
        assert_bit_identical(delta, full_resnapshot(delta))
        replicas = [n for n in delta.sp_map if n not in prev.sp_map and n != "N10"]
        assert len(replicas) == 3
        for replica in replicas:
            assert delta.sp_map[replica] == prev.sp_map["N10"]

    def test_swap_under_user_sp_stays_local(self):
        """With a user SP map, a gate swap dirties only TFI(gate): no SP
        ripple exists because the user's map is authoritative."""
        _, engine = self.make_engine()
        prev = engine.snapshot()
        impact = edit_impact(prev, EditSet().replace_gate("N22", "and"))
        # N22 is a PO with nothing downstream: its TFI covers the sites
        # reaching it, and N19/N7 (in c17's other cone) stay clean.
        assert 0 < impact["dirty"] < impact["sites"]


# --------------------------------------------------------------- SER analyzer


class TestSERAnalyzerDelta:
    def test_report_for_applies_hardening(self):
        analyzer = SERAnalyzer(s27())
        prev = analyzer.snapshot()
        baseline = analyzer.report_for(prev)
        hardened = analyzer.analyze_delta(prev, EditSet().harden("G10", 10.0))
        report = analyzer.report_for(hardened)
        assert report.total_fit < baseline.total_fit
        assert report.nodes["G10"].fit == pytest.approx(
            baseline.nodes["G10"].fit / 10.0
        )

    def test_report_matches_full_analyze_without_edits(self):
        analyzer = SERAnalyzer(s27())
        report = analyzer.report_for(analyzer.snapshot())
        direct = analyzer.analyze()
        assert report.total_fit == pytest.approx(direct.total_fit)

    def test_chained_report_on_edited_circuit(self):
        analyzer = SERAnalyzer(s27())
        prev = analyzer.snapshot()
        delta = analyzer.analyze_delta(prev, EditSet().replace_gate("G11", "or"))
        report = analyzer.report_for(delta)
        rebuilt = SERAnalyzer(delta.engine.circuit).analyze()
        assert report.total_fit == pytest.approx(rebuilt.total_fit)


# ------------------------------------------------------------- thread safety


class TestConcurrentSweeps:
    """The engine sweep lock (PR 8): one engine, many threads.

    The analysis service runs sweeps from worker threads against shared
    per-circuit engines, so concurrent ``snapshot()`` and
    ``analyze_delta()`` calls must serialize on the engine's internal
    scratch (scalar caches, cone caches, cached backend slots) and every
    thread must still get the bit-identical answer.
    """

    def test_concurrent_snapshots_are_identical(self):
        import threading

        engine = EPPEngine(random_combinational(8, 180, seed=11))
        reference = engine.snapshot()
        barrier = threading.Barrier(8)
        results: list = [None] * 8
        errors: list = []

        def sweep(slot):
            try:
                barrier.wait(timeout=10)
                results[slot] = engine.snapshot()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=sweep, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for snap in results:
            assert snap is not None
            assert_bit_identical(snap, reference)

    def test_concurrent_deltas_from_shared_base(self):
        import threading

        engine = EPPEngine(random_combinational(8, 180, seed=12))
        base = engine.snapshot()
        gates = [name for name, _ in zip(engine.circuit.gates, range(6))]
        # Sequential references first: each edit set applied to the base.
        references = [
            engine.analyze_delta(base, EditSet().harden(name, 10.0))
            for name in gates
        ]
        barrier = threading.Barrier(len(gates))
        results: list = [None] * len(gates)
        errors: list = []

        def what_if(slot, name):
            try:
                barrier.wait(timeout=10)
                results[slot] = engine.analyze_delta(
                    base, EditSet().harden(name, 10.0)
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=what_if, args=(i, name))
            for i, name in enumerate(gates)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for got, want in zip(results, references):
            assert got is not None
            assert got.site_names == want.site_names
            assert np.array_equal(got.p_sensitized, want.p_sensitized)

    def test_mixed_snapshot_and_delta_threads(self):
        import threading

        engine = EPPEngine(s27())
        base = engine.snapshot()
        snap_ref = np.asarray(base.p_sensitized)
        delta_ref = np.asarray(
            engine.analyze_delta(base, EditSet().harden("G10", 10.0)).p_sensitized
        )
        errors: list = []
        barrier = threading.Barrier(6)

        def snapshotter():
            try:
                barrier.wait(timeout=10)
                for _ in range(5):
                    assert np.array_equal(
                        np.asarray(engine.snapshot().p_sensitized), snap_ref
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def deltaist():
            try:
                barrier.wait(timeout=10)
                for _ in range(5):
                    delta = engine.analyze_delta(
                        base, EditSet().harden("G10", 10.0)
                    )
                    assert np.array_equal(
                        np.asarray(delta.p_sensitized), delta_ref
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=snapshotter) for _ in range(3)]
        threads += [threading.Thread(target=deltaist) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
