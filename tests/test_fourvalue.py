"""Four-valued EPP vector algebra."""

import pytest

from repro.core.fourvalue import EPPValue
from repro.errors import AnalysisError


class TestConstructors:
    def test_error_site(self):
        value = EPPValue.error_site()
        assert value.pa == 1.0
        assert value.error_probability == 1.0
        assert not value.is_off_path

    def test_off_path(self):
        value = EPPValue.off_path(0.3)
        assert value.p1 == pytest.approx(0.3)
        assert value.p0 == pytest.approx(0.7)
        assert value.is_off_path
        assert value.error_probability == 0.0

    def test_off_path_validates_range(self):
        with pytest.raises(AnalysisError):
            EPPValue.off_path(1.2)

    def test_clamped_absorbs_rounding(self):
        value = EPPValue.clamped(-1e-12, 0.5, 0.2, 0.3 + 1e-12)
        assert value.pa == 0.0

    def test_components_must_sum_to_one(self):
        with pytest.raises(AnalysisError, match="sum to 1"):
            EPPValue(0.5, 0.5, 0.5, 0.5)

    def test_components_must_be_probabilities(self):
        with pytest.raises(AnalysisError, match="out of range"):
            EPPValue(1.5, -0.5, 0.0, 0.0)


class TestOperations:
    def test_invert_swaps_polarity_and_constants(self):
        value = EPPValue(0.1, 0.2, 0.3, 0.4)
        inverted = value.invert()
        assert inverted == EPPValue(0.2, 0.1, 0.4, 0.3)

    def test_double_invert_is_identity(self):
        value = EPPValue(0.1, 0.2, 0.3, 0.4)
        assert value.invert().invert() == value

    def test_error_probability(self):
        assert EPPValue(0.1, 0.2, 0.3, 0.4).error_probability == pytest.approx(0.3)

    def test_as_tuple_order(self):
        assert EPPValue(0.1, 0.2, 0.3, 0.4).as_tuple() == (0.1, 0.2, 0.3, 0.4)

    def test_isclose(self):
        a = EPPValue(0.1, 0.2, 0.3, 0.4)
        b = EPPValue(0.1 + 1e-12, 0.2, 0.3, 0.4 - 1e-12)
        assert a.isclose(b)
        assert not a.isclose(EPPValue(0.2, 0.1, 0.3, 0.4))


class TestFormatting:
    def test_paper_notation(self):
        text = str(EPPValue(0.042, 0.392, 0.168, 0.398))
        assert "0.042(a)" in text
        assert "0.392(a̅)" in text
        assert "0.168(0)" in text
        assert "0.398(1)" in text

    def test_zero_terms_omitted(self):
        assert str(EPPValue.error_site()) == "1(a)"
