"""MBU analysis, witness extraction, adaptive estimation."""

import pytest

from repro.core.baseline import RandomSimulationEstimator
from repro.core.epp import EPPEngine
from repro.core.mbu import (
    level_adjacent_groups,
    mbu_independence_estimate,
    mbu_p_sensitized,
)
from repro.core.witness import find_sensitizing_vector
from repro.errors import AnalysisError, SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.library import c17, s27
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import exhaustive_words

from tests.helpers import exhaustive_p_sensitized


class TestMultiDetection:
    def test_single_site_group_matches_single_site(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        words, width = exhaustive_words(c17_circuit.inputs)
        good = injector.simulator.run(words, width)
        single = injector.detection_word(good, "N11", width)
        multi = injector.multi_detection_word(good, ["N11"], width)
        assert single == multi

    def test_matches_bruteforce_on_pairs(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        words, width = exhaustive_words(c17_circuit.inputs)
        good = injector.simulator.run(words, width)
        pairs = [("N10", "N11"), ("N16", "N19"), ("N10", "N19"), ("N1", "N16")]
        for pair in pairs:
            multi = injector.multi_detection_word(good, list(pair), width)
            for pattern in range(width):
                assignment = {
                    name: (words[name] >> pattern) & 1 for name in c17_circuit.inputs
                }
                reference = c17_circuit.evaluate(assignment)
                flipped = _evaluate_with_flips(c17_circuit, assignment, set(pair))
                expected = any(
                    flipped[o] != reference[o] for o in c17_circuit.outputs
                )
                assert ((multi >> pattern) & 1) == int(expected), (pair, pattern)

    def test_flips_can_cancel(self):
        """Two flips feeding one XOR cancel exactly: joint detection 0."""
        circuit = Circuit("cancel")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("l", GateType.BUF, ["a"])
        circuit.add_gate("r", GateType.BUF, ["b"])
        circuit.add_gate("out", GateType.XOR, ["l", "r"])
        circuit.mark_output("out")
        injector = FaultInjector(circuit)
        words, width = exhaustive_words(circuit.inputs)
        good = injector.simulator.run(words, width)
        assert injector.detection_word(good, "l", width).bit_count() == width
        assert injector.multi_detection_word(good, ["l", "r"], width) == 0

    def test_good_values_restored(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        words, width = exhaustive_words(c17_circuit.inputs)
        good = injector.simulator.run(words, width)
        snapshot = list(good)
        injector.multi_detection_word(good, ["N10", "N16"], width)
        assert good == snapshot

    def test_site_inside_another_cone(self, c17_circuit):
        # N16 is in N11's fanout cone: the interleaved flip order matters.
        injector = FaultInjector(c17_circuit)
        words, width = exhaustive_words(c17_circuit.inputs)
        good = injector.simulator.run(words, width)
        multi = injector.multi_detection_word(good, ["N11", "N16"], width)
        for pattern in (0, 7, 13, 31):
            assignment = {
                name: (words[name] >> pattern) & 1 for name in c17_circuit.inputs
            }
            reference = c17_circuit.evaluate(assignment)
            flipped = _evaluate_with_flips(c17_circuit, assignment, {"N11", "N16"})
            expected = any(flipped[o] != reference[o] for o in c17_circuit.outputs)
            assert ((multi >> pattern) & 1) == int(expected)

    def test_empty_group_rejected(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        with pytest.raises(SimulationError):
            injector.multi_detection_word([0] * injector.compiled.n, [], 1)


class TestMbuEstimates:
    def test_mc_estimate_matches_exhaustive(self, c17_circuit):
        injector = FaultInjector(c17_circuit)
        words, width = exhaustive_words(c17_circuit.inputs)
        good = injector.simulator.run(words, width)
        truth = injector.multi_detection_word(good, ["N10", "N19"], width).bit_count() / width
        estimate = mbu_p_sensitized(c17_circuit, ["N10", "N19"], n_vectors=40_000, seed=3)
        assert estimate == pytest.approx(truth, abs=0.01)

    def test_independence_estimate_exact_for_disjoint_subcircuits(self):
        circuit = Circuit("disjoint")
        for name in ("a1", "b1", "a2", "b2"):
            circuit.add_input(name)
        circuit.add_gate("g1", GateType.AND, ["a1", "b1"])
        circuit.add_gate("g2", GateType.OR, ["a2", "b2"])
        circuit.add_gate("o1", GateType.BUF, ["g1"])
        circuit.add_gate("o2", GateType.BUF, ["g2"])
        circuit.mark_output("o1")
        circuit.mark_output("o2")
        engine = EPPEngine(circuit)
        analytical = mbu_independence_estimate(engine, ["a1", "a2"])
        exact = mbu_p_sensitized(circuit, ["a1", "a2"], n_vectors=60_000, seed=5)
        assert analytical == pytest.approx(exact, abs=0.01)

    def test_independence_estimate_misses_cancellation(self):
        circuit = Circuit("cancel2")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("l", GateType.BUF, ["a"])
        circuit.add_gate("r", GateType.BUF, ["b"])
        circuit.add_gate("out", GateType.XOR, ["l", "r"])
        circuit.mark_output("out")
        engine = EPPEngine(circuit)
        analytical = mbu_independence_estimate(engine, ["l", "r"])
        exact = mbu_p_sensitized(circuit, ["l", "r"], n_vectors=1024, seed=1)
        assert exact == 0.0
        assert analytical == pytest.approx(1.0)  # documented failure mode

    def test_level_adjacent_groups(self, s27_circuit):
        groups = level_adjacent_groups(s27_circuit, group_size=2)
        assert groups
        levels = s27_circuit.levels()
        for group in groups:
            assert len(group) == 2
            assert levels[group[0]] == levels[group[1]]

    def test_group_size_validation(self, s27_circuit):
        with pytest.raises(AnalysisError):
            level_adjacent_groups(s27_circuit, group_size=1)
        with pytest.raises(AnalysisError):
            mbu_independence_estimate(EPPEngine(s27_circuit), [])


class TestWitness:
    def test_witness_actually_sensitizes(self, c17_circuit):
        for site in c17_circuit.gates:
            witness = find_sensitizing_vector(c17_circuit, site)
            assert witness is not None
            reference = c17_circuit.evaluate(witness)
            flipped = _evaluate_with_flips(c17_circuit, witness, {site})
            assert any(flipped[o] != reference[o] for o in c17_circuit.outputs), site

    def test_untestable_site_returns_none(self):
        circuit = Circuit("blocked")
        circuit.add_input("x")
        circuit.add_const("zero", 0)
        circuit.add_gate("dead", GateType.AND, ["x", "zero"])
        circuit.add_gate("po", GateType.OR, ["dead", "x"])
        circuit.mark_output("po")
        # 'dead' is constant 0 and po = x regardless: flipping 'dead'
        # makes po = 1 always; when x=1 no difference, when x=0 diff -> testable!
        # Use a truly blocked site instead: AND with const forces masking.
        circuit2 = Circuit("blocked2")
        circuit2.add_input("x")
        circuit2.add_const("zero", 0)
        circuit2.add_gate("g", GateType.BUF, ["x"])
        circuit2.add_gate("masked", GateType.AND, ["g", "zero"])
        circuit2.add_gate("anded", GateType.AND, ["masked", "zero"])
        circuit2.mark_output("anded")
        assert find_sensitizing_vector(circuit2, "g") is None

    def test_sequential_witness_includes_state(self, s27_circuit):
        witness = find_sensitizing_vector(s27_circuit, "G8")
        assert witness is not None
        assert set(witness) == set(s27_circuit.inputs + s27_circuit.flip_flops)

    def test_unknown_site(self, c17_circuit):
        with pytest.raises(AnalysisError):
            find_sensitizing_vector(c17_circuit, "ghost")


class TestAdaptiveEstimation:
    def test_reaches_target_precision(self, c17_circuit):
        estimator = RandomSimulationEstimator(c17_circuit, seed=4, word_width=1024)
        truth = exhaustive_p_sensitized(c17_circuit, "N11")
        estimate, used = estimator.estimate_adaptive("N11", half_width=0.01)
        assert estimate == pytest.approx(truth, abs=0.02)
        assert used >= 4 * estimator.word_width

    def test_easy_sites_stop_early(self, c17_circuit):
        estimator = RandomSimulationEstimator(c17_circuit, seed=4, word_width=256)
        # N22 is a PO: p = 1.0, zero variance -> stops at the floor sample.
        estimate, used = estimator.estimate_adaptive("N22", half_width=0.02)
        assert estimate == 1.0
        assert used == 4 * 256

    def test_hard_targets_use_more_vectors(self, c17_circuit):
        estimator = RandomSimulationEstimator(c17_circuit, seed=4, word_width=256)
        _, loose = estimator.estimate_adaptive("N11", half_width=0.05)
        _, tight = estimator.estimate_adaptive("N11", half_width=0.01)
        assert tight > loose

    def test_validation(self, c17_circuit):
        estimator = RandomSimulationEstimator(c17_circuit)
        with pytest.raises(SimulationError):
            estimator.estimate_adaptive("N11", half_width=0.7)


def _evaluate_with_flips(circuit, assignment, sites):
    from repro.netlist.gate_types import eval_gate_bool

    compiled = circuit.compiled()
    values = [0] * compiled.n
    for node_id in compiled.topo:
        gate_type = compiled.gate_type(node_id)
        name = compiled.names[node_id]
        if gate_type is GateType.INPUT or gate_type is GateType.DFF:
            values[node_id] = assignment[name]
        else:
            values[node_id] = eval_gate_bool(
                gate_type, [values[p] for p in compiled.fanin(node_id)]
            )
        if name in sites:
            values[node_id] ^= 1
    return {compiled.names[i]: values[i] for i in range(compiled.n)}
