"""Event-driven simulator vs the levelized reference."""

import random

import pytest

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import random_combinational
from repro.netlist.library import c17
from repro.sim.event_sim import EventDrivenSimulator


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_full_reevaluation_on_random_walks(self, seed):
        circuit = random_combinational(8, 50, seed=seed)
        simulator = EventDrivenSimulator(circuit)
        rng = random.Random(seed)
        assignment = {name: rng.randint(0, 1) for name in circuit.inputs}
        simulator.initialize(assignment)
        for _ in range(30):
            flip = rng.choice(circuit.inputs)
            assignment[flip] ^= 1
            simulator.apply({flip: assignment[flip]})
            assert simulator.values() == circuit.evaluate(assignment)

    def test_multi_signal_change(self, c17_circuit):
        simulator = EventDrivenSimulator(c17_circuit)
        assignment = {name: 0 for name in c17_circuit.inputs}
        simulator.initialize(assignment)
        new_assignment = {name: 1 for name in c17_circuit.inputs}
        simulator.apply(new_assignment)
        assert simulator.values() == c17_circuit.evaluate(new_assignment)


class TestEventSemantics:
    def test_no_change_no_events(self, c17_circuit):
        simulator = EventDrivenSimulator(c17_circuit)
        assignment = {name: 1 for name in c17_circuit.inputs}
        simulator.initialize(assignment)
        before = simulator.events_processed
        toggled = simulator.apply(assignment)  # identical values
        assert toggled == set()
        assert simulator.events_processed == before

    def test_events_die_at_controlled_gates(self):
        # b change cannot pass the AND while a = 0.
        circuit = Circuit("ctrl")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", GateType.AND, ["a", "b"])
        circuit.add_gate("h", GateType.NOT, ["g"])
        circuit.mark_output("h")
        simulator = EventDrivenSimulator(circuit)
        simulator.initialize({"a": 0, "b": 0})
        toggled = simulator.apply({"b": 1})
        assert toggled == {"b"}  # the event died at g

    def test_toggle_counting(self):
        circuit = Circuit("t")
        circuit.add_input("x")
        circuit.add_gate("inv", GateType.NOT, ["x"])
        circuit.mark_output("inv")
        simulator = EventDrivenSimulator(circuit)
        simulator.initialize({"x": 0})
        for value in (1, 0, 1):
            simulator.apply({"x": value})
        assert simulator.activity["x"] == 3
        assert simulator.activity["inv"] == 3

    def test_run_stimuli_rates(self, c17_circuit):
        simulator = EventDrivenSimulator(c17_circuit)
        rng = random.Random(1)
        stimuli = [
            {name: rng.randint(0, 1) for name in c17_circuit.inputs}
            for _ in range(50)
        ]
        rates = simulator.run_stimuli(
            {name: 0 for name in c17_circuit.inputs}, stimuli
        )
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())
        # Inputs toggle at ~0.5 under uniform random stimuli.
        assert 0.2 < rates["N1"] < 0.8


class TestValidation:
    def test_apply_before_initialize(self, c17_circuit):
        with pytest.raises(SimulationError, match="initialize"):
            EventDrivenSimulator(c17_circuit).apply({"N1": 1})

    def test_gate_changes_rejected(self, c17_circuit):
        simulator = EventDrivenSimulator(c17_circuit)
        simulator.initialize({name: 0 for name in c17_circuit.inputs})
        with pytest.raises(SimulationError, match="source"):
            simulator.apply({"N10": 1})

    def test_unknown_source(self, c17_circuit):
        simulator = EventDrivenSimulator(c17_circuit)
        simulator.initialize({name: 0 for name in c17_circuit.inputs})
        with pytest.raises(SimulationError, match="unknown"):
            simulator.apply({"ghost": 1})

    def test_non_binary_rejected(self, c17_circuit):
        simulator = EventDrivenSimulator(c17_circuit)
        simulator.initialize({name: 0 for name in c17_circuit.inputs})
        with pytest.raises(SimulationError, match="0/1"):
            simulator.apply({"N1": 2})

    def test_sequential_state_as_source(self):
        from repro.netlist.library import s27

        circuit = s27()
        simulator = EventDrivenSimulator(circuit)
        assignment = {name: 0 for name in circuit.inputs + circuit.flip_flops}
        simulator.initialize(assignment)
        toggled = simulator.apply({"G5": 1})
        assert "G5" in toggled
        full = dict(assignment, G5=1)
        assert simulator.values() == circuit.evaluate(full)
