"""strip_dead transform and the ISCAS'85 profile additions."""

import pytest

from repro.errors import ConfigError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import (
    ISCAS85_PROFILES,
    generate_iscas,
)
from repro.netlist.library import s27
from repro.netlist.transform import strip_dead
from repro.netlist.validate import validate_circuit


class TestStripDead:
    def test_removes_dead_gates(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("live", GateType.NOT, ["a"])
        circuit.add_gate("dead", GateType.BUF, ["a"])
        circuit.add_gate("dead2", GateType.NOT, ["dead"])
        circuit.mark_output("live")
        stripped = strip_dead(circuit)
        assert "dead" not in stripped and "dead2" not in stripped
        assert "live" in stripped

    def test_removes_dead_state_loops(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("po", GateType.BUF, ["a"])
        circuit.mark_output("po")
        # state machine that feeds nothing observable
        circuit.add_gate("d", GateType.NOT, ["q"])
        circuit.add_dff("q", "d")
        stripped = strip_dead(circuit)
        assert "q" not in stripped and "d" not in stripped

    def test_keeps_state_feeding_outputs(self):
        stripped = strip_dead(s27())
        assert set(stripped.flip_flops) == {"G5", "G6", "G7"}
        assert len(stripped) == len(s27())  # s27 has no dead logic

    def test_preserves_behaviour(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("keep", GateType.XOR, ["a", "b"])
        circuit.add_gate("junk", GateType.AND, ["a", "b"])
        circuit.mark_output("keep")
        stripped = strip_dead(circuit)
        for pattern in range(4):
            assignment = {"a": pattern & 1, "b": (pattern >> 1) & 1}
            assert (
                circuit.evaluate(assignment)["keep"]
                == stripped.evaluate(assignment)["keep"]
            )

    def test_unused_inputs_are_dropped(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("unused")
        circuit.add_gate("po", GateType.BUF, ["a"])
        circuit.mark_output("po")
        stripped = strip_dead(circuit)
        assert "unused" not in stripped

    def test_cleans_generator_warnings(self):
        circuit = generate_iscas("s9234")
        before = len(validate_circuit(circuit).warnings)
        stripped = strip_dead(circuit)
        after = len(validate_circuit(stripped).warnings)
        assert after < before
        assert validate_circuit(stripped).ok


class TestIscas85Profiles:
    def test_known_roster(self):
        assert {"c432", "c880", "c6288", "c7552"} <= set(ISCAS85_PROFILES)
        for profile in ISCAS85_PROFILES.values():
            assert profile.n_flip_flops == 0

    @pytest.mark.parametrize("name", ["c432", "c880", "c1908"])
    def test_generation_matches_profile(self, name):
        profile = ISCAS85_PROFILES[name]
        circuit = generate_iscas(name)
        assert not circuit.is_sequential
        assert len(circuit.inputs) == profile.n_inputs
        assert len(circuit.outputs) == profile.n_outputs
        assert len(circuit.gates) == profile.n_gates
        assert validate_circuit(circuit).ok

    def test_c6288_is_deep(self):
        circuit = generate_iscas("c6288")
        assert circuit.depth() >= 100  # multiplier-like depth profile

    def test_unknown_name_lists_both_families(self):
        with pytest.raises(ConfigError) as excinfo:
            generate_iscas("b17")
        assert "s38417" in str(excinfo.value)
        assert "c7552" in str(excinfo.value)
