"""Monte Carlo signal probabilities."""

import pytest

from repro.errors import ProbabilityError
from repro.netlist.library import c17, counter, s27
from repro.probability.exact import exact_signal_probabilities
from repro.probability.monte_carlo import (
    monte_carlo_signal_probabilities,
    sp_standard_error,
)


class TestCombinational:
    def test_converges_to_exact(self):
        circuit = c17()
        exact = exact_signal_probabilities(circuit)
        estimate = monte_carlo_signal_probabilities(circuit, n_vectors=100_000, seed=5)
        for name in exact:
            assert estimate[name] == pytest.approx(exact[name], abs=0.01)

    def test_weighted_inputs(self):
        circuit = c17()
        weights = {name: 0.9 for name in circuit.inputs}
        exact = exact_signal_probabilities(circuit, input_probs=weights)
        estimate = monte_carlo_signal_probabilities(
            circuit, input_probs=weights, n_vectors=100_000, seed=6
        )
        for name in exact:
            assert estimate[name] == pytest.approx(exact[name], abs=0.01)

    def test_deterministic_by_seed(self):
        a = monte_carlo_signal_probabilities(c17(), n_vectors=2048, seed=9)
        b = monte_carlo_signal_probabilities(c17(), n_vectors=2048, seed=9)
        assert a == b

    def test_seed_changes_estimate(self):
        a = monte_carlo_signal_probabilities(c17(), n_vectors=512, seed=1)
        b = monte_carlo_signal_probabilities(c17(), n_vectors=512, seed=2)
        assert a != b

    def test_explicit_rng_is_deterministic(self):
        """Two master generators in the same state yield identical maps —
        the sampling is a pure function of the rng, never module state."""
        import random

        a = monte_carlo_signal_probabilities(
            c17(), n_vectors=2048, rng=random.Random(42)
        )
        b = monte_carlo_signal_probabilities(
            c17(), n_vectors=2048, rng=random.Random(42)
        )
        assert a == b

    def test_explicit_rng_overrides_seed(self):
        import random

        by_seed = monte_carlo_signal_probabilities(c17(), n_vectors=512, seed=9)
        by_rng = monte_carlo_signal_probabilities(
            c17(), n_vectors=512, seed=9, rng=random.Random(1234)
        )
        assert by_seed != by_rng

    def test_explicit_rng_advances_master_state(self):
        """Consecutive calls on one master rng draw fresh streams, so a
        calling experiment gets independent components from one seed."""
        import random

        master = random.Random(7)
        first = monte_carlo_signal_probabilities(c17(), n_vectors=512, rng=master)
        second = monte_carlo_signal_probabilities(c17(), n_vectors=512, rng=master)
        assert first != second

    def test_explicit_rng_seeds_sequential_state_stream(self):
        """The sequential path's initial-state stream also descends from
        the master rng (bit-for-bit reproducible sequential estimates)."""
        import random

        a = monte_carlo_signal_probabilities(
            s27(), n_vectors=1024, rng=random.Random(3)
        )
        b = monte_carlo_signal_probabilities(
            s27(), n_vectors=1024, rng=random.Random(3)
        )
        assert a == b

    def test_small_word_width(self):
        # Exercises the multi-batch path.
        estimate = monte_carlo_signal_probabilities(
            c17(), n_vectors=1000, seed=4, word_width=64
        )
        assert all(0.0 <= p <= 1.0 for p in estimate.values())


class TestSequential:
    def test_counter_bit_frequency(self):
        estimate = monte_carlo_signal_probabilities(
            counter(3),
            input_probs={"en": 1.0},
            n_vectors=50_000,
            seed=7,
            warmup_cycles=8,
        )
        assert estimate["q0"] == pytest.approx(0.5, abs=0.03)

    def test_s27_probabilities_in_range(self):
        estimate = monte_carlo_signal_probabilities(s27(), n_vectors=20_000, seed=8)
        assert all(0.0 <= p <= 1.0 for p in estimate.values())
        assert estimate["G17"] == pytest.approx(1 - estimate["G11"], abs=1e-12)


class TestValidation:
    def test_rejects_zero_vectors(self):
        with pytest.raises(ProbabilityError):
            monte_carlo_signal_probabilities(c17(), n_vectors=0)

    def test_standard_error(self):
        assert sp_standard_error(10_000) == pytest.approx(0.005)
        with pytest.raises(ProbabilityError):
            sp_standard_error(0)
