"""Netlist transforms: sequential cut, constant folding, buffer sweep, cone, TMR."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.generate import generate_iscas, random_combinational
from repro.netlist.library import c17, counter, s27
from repro.netlist.transform import (
    extract_cone,
    propagate_constants,
    sweep_buffers,
    to_combinational,
    triplicate,
    triplicate_nodes,
)
from repro.netlist.validate import validate_circuit
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import RandomVectorSource


class TestToCombinational:
    def test_identity_for_combinational(self):
        view = to_combinational(c17())
        assert view.is_identity
        assert view.circuit.inputs == c17().inputs

    def test_s27_cut_shape(self):
        view = to_combinational(s27())
        cut = view.circuit
        assert not cut.is_sequential
        assert set(cut.inputs) == {"G0", "G1", "G2", "G3", "G5", "G6", "G7"}
        # original PO plus the three D drivers
        assert set(cut.outputs) == {"G17", "G10", "G11", "G13"}
        assert set(view.state_inputs) == {"G5", "G6", "G7"}

    def test_cut_matches_sequential_evaluation(self):
        original = s27()
        view = to_combinational(original)
        assignment = {"G0": 1, "G1": 0, "G2": 1, "G3": 0, "G5": 1, "G6": 0, "G7": 1}
        assert original.evaluate(assignment) == view.circuit.evaluate(assignment)

    def test_shared_d_driver_maps_to_both_ffs(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["a"])
        circuit.add_dff("q1", "g")
        circuit.add_dff("q2", "g")
        circuit.mark_output("q1")
        view = to_combinational(circuit)
        assert sorted(view.state_outputs["g"]) == ["q1", "q2"]


class TestPropagateConstants:
    def test_folds_constant_cone(self):
        circuit = Circuit()
        circuit.add_const("zero", 0)
        circuit.add_input("a")
        circuit.add_gate("g", GateType.AND, ["a", "zero"])
        circuit.add_gate("h", GateType.OR, ["g", "a"])
        circuit.mark_output("h")
        folded = propagate_constants(circuit)
        assert folded.node("g").gate_type is GateType.CONST0

    def test_drops_noncontrolling_constants(self):
        circuit = Circuit()
        circuit.add_const("one", 1)
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", GateType.AND, ["a", "one", "b"])
        circuit.mark_output("g")
        folded = propagate_constants(circuit)
        assert folded.node("g").fanin == ("a", "b")

    def test_preserves_behaviour(self):
        base = random_combinational(5, 25, seed=3)
        circuit = base.copy()
        # splice constants into the netlist
        circuit.add_const("c0", 0)
        circuit.add_const("c1", 1)
        circuit.add_gate("mixed", GateType.OR, [circuit.gates[0], "c0", "c1"])
        circuit.mark_output("mixed")
        folded = propagate_constants(circuit)
        for pattern in range(32):
            assignment = {
                name: (pattern >> k) & 1 for k, name in enumerate(circuit.inputs)
            }
            original_values = circuit.evaluate(assignment)
            folded_values = folded.evaluate(assignment)
            for output in circuit.outputs:
                assert original_values[output] == folded_values[output]


class TestSweepBuffers:
    def test_removes_interior_buffers(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("b1", GateType.BUF, ["a"])
        circuit.add_gate("b2", GateType.BUF, ["b1"])
        circuit.add_gate("g", GateType.NOT, ["b2"])
        circuit.mark_output("g")
        swept = sweep_buffers(circuit)
        assert "b1" not in swept and "b2" not in swept
        assert swept.node("g").fanin == ("a",)

    def test_keeps_output_buffers(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("ob", GateType.BUF, ["a"])
        circuit.mark_output("ob")
        swept = sweep_buffers(circuit)
        assert "ob" in swept

    def test_preserves_behaviour(self):
        circuit = s27()
        swept = sweep_buffers(circuit)
        assignment = {"G0": 1, "G1": 1, "G2": 0, "G3": 1, "G5": 0, "G6": 1, "G7": 0}
        original = circuit.evaluate(assignment)
        after = swept.evaluate(assignment)
        assert original["G17"] == after["G17"]


class TestExtractCone:
    def test_cone_of_c17_output(self):
        cone = extract_cone(c17(), ["N22"])
        assert set(cone.outputs) == {"N22"}
        assert "N19" not in cone  # feeds only N23
        assert "N7" not in cone

    def test_cone_evaluation_matches(self):
        circuit = c17()
        cone = extract_cone(circuit, ["N23"])
        for pattern in range(32):
            assignment = {
                name: (pattern >> k) & 1 for k, name in enumerate(circuit.inputs)
            }
            cone_assignment = {k: v for k, v in assignment.items() if k in cone.inputs}
            assert (
                circuit.evaluate(assignment)["N23"]
                == cone.evaluate(cone_assignment)["N23"]
            )

    def test_dff_becomes_cone_input(self):
        cone = extract_cone(s27(), ["G17"])
        assert not cone.is_sequential
        assert "G5" in cone.inputs or "G5" not in cone  # DFFs in cone are inputs
        for name in cone.inputs:
            assert cone.node(name).gate_type is GateType.INPUT

    def test_through_dff_keeps_state(self):
        cone = extract_cone(s27(), ["G17"], through_dff=True)
        assert cone.is_sequential

    def test_unknown_root_rejected(self):
        with pytest.raises(NetlistError):
            extract_cone(c17(), ["nope"])


class TestTriplicate:
    def test_shape(self):
        tmr = triplicate(c17())
        assert len(tmr.gates) == 3 * 6 + 2  # replicas + two voters
        assert tmr.inputs == c17().inputs
        assert tmr.outputs == c17().outputs

    def test_functional_equivalence(self):
        original = c17()
        tmr = triplicate(original)
        for pattern in range(32):
            assignment = {
                name: (pattern >> k) & 1 for k, name in enumerate(original.inputs)
            }
            expected = original.evaluate(assignment)
            got = tmr.evaluate(assignment)
            for output in original.outputs:
                assert expected[output] == got[output]

    def test_single_replica_fault_is_masked(self):
        original = c17()
        tmr = triplicate(original)
        injector = FaultInjector(tmr)
        words = RandomVectorSource(tmr.inputs, seed=5).next_words(512)
        good = injector.simulator.run(words, 512)
        for gate in original.gates:
            assert injector.detection_count(good, f"{gate}__r0", 512) == 0

    def test_voter_fault_is_not_masked(self):
        tmr = triplicate(c17())
        injector = FaultInjector(tmr)
        words = RandomVectorSource(tmr.inputs, seed=5).next_words(512)
        good = injector.simulator.run(words, 512)
        # The voter output IS the primary output: always detected.
        assert injector.detection_count(good, "N22", 512) == 512

    def test_sequential_circuits_triplicate(self):
        tmr = triplicate(counter(3))
        assert len(tmr.flip_flops) == 9

    def test_duplicate_suffixes_rejected(self):
        with pytest.raises(NetlistError):
            triplicate(c17(), suffixes=("_a", "_a", "_b"))

    def test_records_suffixes_used(self):
        tmr = triplicate(c17())
        assert tmr.tmr_suffixes == ("__r0", "__r1", "__r2")
        assert "N10__r0" in tmr

    def test_default_suffixes_escalate_past_existing_names(self):
        """A circuit already holding a ``__r0`` name must not explode —
        the auto suffixes deterministically escalate instead."""
        circuit = c17()
        circuit.add_gate("N10__r0", GateType.NOT, ["N1"])
        circuit.mark_output("N10__r0")
        tmr = triplicate(circuit)
        assert tmr.tmr_suffixes == ("__r0_", "__r1_", "__r2_")
        # the pre-existing __r0 node is replicated like any other gate
        assert "N10__r0__r0_" in tmr
        validate_circuit(tmr, strict=True)

    def test_explicit_suffix_collision_raises(self):
        circuit = c17()
        circuit.add_gate("N10_a", GateType.NOT, ["N1"])
        circuit.mark_output("N10_a")
        with pytest.raises(NetlistError, match="collide"):
            triplicate(circuit, suffixes=("_a", "_b", "_c"))


class TestTriplicateNodes:
    def test_voter_replaces_gate_in_place(self):
        circuit = c17()
        mapping = triplicate_nodes(circuit, ["N10"])
        assert mapping == {"N10": ("N10__r0", "N10__r1", "N10__r2")}
        assert circuit.node("N10").gate_type is GateType.MAJ
        assert circuit.node("N10").fanin == mapping["N10"]
        for replica in mapping["N10"]:
            assert circuit.node(replica).gate_type is GateType.NAND
            assert circuit.node(replica).fanin == ("N1", "N3")
        # users of N10 are untouched
        assert "N10" in circuit.node("N22").fanin
        validate_circuit(circuit, strict=True)

    def test_functional_equivalence(self):
        original = c17()
        edited = original.copy()
        triplicate_nodes(edited, ["N10", "N16"])
        for pattern in range(32):
            assignment = {
                name: (pattern >> k) & 1
                for k, name in enumerate(original.inputs)
            }
            expected = original.evaluate(assignment)
            got = edited.evaluate(assignment)
            for output in original.outputs:
                assert expected[output] == got[output]

    def test_single_replica_fault_is_masked(self):
        circuit = c17()
        triplicate_nodes(circuit, ["N10"])
        injector = FaultInjector(circuit)
        words = RandomVectorSource(circuit.inputs, seed=5).next_words(512)
        good = injector.simulator.run(words, 512)
        assert injector.detection_count(good, "N10__r0", 512) == 0

    def test_repeated_local_tmr_escalates_suffixes(self):
        circuit = c17()
        triplicate_nodes(circuit, ["N10"])
        mapping = triplicate_nodes(circuit, ["N10"])  # re-TMR the voter
        assert mapping["N10"] == ("N10__r0_", "N10__r1_", "N10__r2_")
        validate_circuit(circuit, strict=True)

    def test_duplicate_targets_rejected(self):
        with pytest.raises(NetlistError, match="duplicate"):
            triplicate_nodes(c17(), ["N10", "N10"])

    def test_non_combinational_targets_rejected(self):
        circuit = s27()
        with pytest.raises(NetlistError, match="combinational"):
            triplicate_nodes(circuit, ["G0"])  # primary input
        with pytest.raises(NetlistError, match="combinational"):
            triplicate_nodes(circuit, ["G5"])  # flip-flop

    def test_sequential_users_untouched(self):
        circuit = s27()
        # G10 drives DFF G5's D pin; local TMR must keep that wiring.
        triplicate_nodes(circuit, ["G10"])
        assert circuit.node("G5").fanin == ("G10",)
        validate_circuit(circuit, strict=True)


class TestTransformSweepOnISCAS:
    """validate + logic-sim equivalence of the transforms on profile-matched
    ISCAS circuits (the satellite sweep: transforms must neither corrupt
    the netlist nor change the observable logic)."""

    @pytest.mark.parametrize("profile", ["c432", "s953"])
    def test_transforms_validate(self, profile):
        circuit = generate_iscas(profile, seed=3)
        validate_circuit(circuit, strict=True)
        validate_circuit(sweep_buffers(circuit), strict=True)
        validate_circuit(propagate_constants(circuit), strict=True)
        edited = circuit.copy()
        targets = [
            name for name in edited.gates[:4]
            if edited.node(name).gate_type.is_combinational
        ]
        triplicate_nodes(edited, targets)
        validate_circuit(edited, strict=True)

    def test_cone_boundaries_respect_through_dff(self):
        circuit = generate_iscas("s953", seed=3)
        root = circuit.outputs[0]
        stopped = extract_cone(circuit, [root])
        assert not stopped.is_sequential
        through = extract_cone(circuit, [root], through_dff=True)
        validate_circuit(stopped, strict=True)
        validate_circuit(through, strict=True)
        # stopping at D pins only ever *excludes* logic: the stopped
        # cone's names are a subset of the through-DFF cone's, and every
        # DFF the stopped cone met became one of its inputs.
        stopped_names = {node.name for node in stopped}
        through_names = {node.name for node in through}
        assert stopped_names <= through_names
        dffs_met = {
            name for name in stopped.inputs
            if circuit.node(name).gate_type is GateType.DFF
        }
        assert dffs_met, "profile should put state in the output cone"
        assert stopped_names < through_names  # D-pin fanin was pulled in

    def test_sim_equivalence_after_buffer_sweep(self):
        circuit = generate_iscas("c432", seed=3)
        swept = sweep_buffers(circuit)
        rng_patterns = [17, 255, 4095, 2**30 - 1, 123456789]
        for pattern in rng_patterns:
            assignment = {
                name: (pattern >> k) & 1
                for k, name in enumerate(circuit.inputs)
            }
            expected = circuit.evaluate(assignment)
            got = swept.evaluate(assignment)
            for output in circuit.outputs:
                assert expected[output] == got[output]
