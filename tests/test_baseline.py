"""Random-simulation baselines (fast bit-parallel and serial 2005-style)."""

import pytest

from repro.core.baseline import (
    RandomSimulationEstimator,
    SerialRandomSimulationEstimator,
)
from repro.errors import SimulationError
from repro.netlist.library import c17, s27

from tests.helpers import exhaustive_p_sensitized


class TestFastEstimator:
    def test_matches_exhaustive_on_c17(self, c17_circuit):
        estimator = RandomSimulationEstimator(c17_circuit, n_vectors=60_000, seed=3)
        for site in ("N10", "N11", "N16"):
            truth = exhaustive_p_sensitized(c17_circuit, site)
            assert estimator.p_sensitized(site) == pytest.approx(truth, abs=0.01)

    def test_deterministic(self, c17_circuit):
        a = RandomSimulationEstimator(c17_circuit, n_vectors=2048, seed=5).estimate(["N11"])
        b = RandomSimulationEstimator(c17_circuit, n_vectors=2048, seed=5).estimate(["N11"])
        assert a == b

    def test_po_site_is_always_one(self, c17_circuit):
        estimator = RandomSimulationEstimator(c17_circuit, n_vectors=512, seed=1)
        assert estimator.p_sensitized("N22") == 1.0

    def test_shared_vectors_across_sites(self, c17_circuit):
        """estimate() and per-site calls agree (same stream per construction)."""
        batch = RandomSimulationEstimator(c17_circuit, n_vectors=4096, seed=9).estimate(
            ["N10", "N16"]
        )
        single = RandomSimulationEstimator(c17_circuit, n_vectors=4096, seed=9).estimate(
            ["N10"]
        )
        assert batch["N10"] == single["N10"]

    def test_sequential_state_weights(self, s27_circuit):
        skewed = RandomSimulationEstimator(
            s27_circuit, n_vectors=8192, seed=2,
            state_weights={"G5": 1.0, "G6": 1.0, "G7": 1.0},
        )
        uniform = RandomSimulationEstimator(s27_circuit, n_vectors=8192, seed=2)
        # State distribution changes the estimate for state-dependent sites.
        assert skewed.p_sensitized("G8") != uniform.p_sensitized("G8")

    def test_estimate_sampled_deterministic(self, s27_circuit):
        estimator = RandomSimulationEstimator(s27_circuit, n_vectors=1024, seed=4)
        a = set(estimator.estimate_sampled(sample=3, seed=0))
        b = set(estimator.estimate_sampled(sample=3, seed=0))
        assert a == b and len(a) == 3

    def test_validation(self, c17_circuit):
        with pytest.raises(SimulationError):
            RandomSimulationEstimator(c17_circuit, n_vectors=0)
        estimator = RandomSimulationEstimator(c17_circuit, n_vectors=16)
        with pytest.raises(SimulationError):
            estimator.p_sensitized("ghost")


class TestSerialEstimator:
    def test_matches_exhaustive_on_c17(self, c17_circuit):
        estimator = SerialRandomSimulationEstimator(c17_circuit, n_vectors=3000, seed=3)
        for site in ("N11", "N16"):
            truth = exhaustive_p_sensitized(c17_circuit, site)
            assert estimator.p_sensitized(site) == pytest.approx(truth, abs=0.04)

    def test_agrees_with_fast_estimator(self, c17_circuit):
        serial = SerialRandomSimulationEstimator(c17_circuit, n_vectors=4000, seed=8)
        fast = RandomSimulationEstimator(c17_circuit, n_vectors=40_000, seed=9)
        for site in ("N10", "N19"):
            assert serial.p_sensitized(site) == pytest.approx(
                fast.p_sensitized(site), abs=0.04
            )

    def test_source_site_flip(self, c17_circuit):
        estimator = SerialRandomSimulationEstimator(c17_circuit, n_vectors=2000, seed=1)
        truth = exhaustive_p_sensitized(c17_circuit, "N3")
        assert estimator.p_sensitized("N3") == pytest.approx(truth, abs=0.05)

    def test_sequential_site(self, s27_circuit):
        estimator = SerialRandomSimulationEstimator(s27_circuit, n_vectors=500, seed=6)
        assert estimator.p_sensitized("G11") == 1.0  # drives the PO inverter

    def test_deterministic(self, c17_circuit):
        a = SerialRandomSimulationEstimator(c17_circuit, n_vectors=256, seed=5).estimate(["N11"])
        b = SerialRandomSimulationEstimator(c17_circuit, n_vectors=256, seed=5).estimate(["N11"])
        assert a == b

    def test_validation(self, c17_circuit):
        with pytest.raises(SimulationError):
            SerialRandomSimulationEstimator(c17_circuit, n_vectors=0)
