"""End-to-end integration: the full flow a user of the library would run."""

import pytest

from repro import (
    EPPEngine,
    RandomSimulationEstimator,
    SERAnalyzer,
    parse_bench,
    validate_circuit,
    write_bench,
)
from repro.netlist.generate import generate_iscas, random_combinational
from repro.netlist.library import s27
from repro.probability.monte_carlo import monte_carlo_signal_probabilities
from repro.ser.hardening import selective_hardening_curve


class TestFullFlow:
    def test_parse_validate_analyze_harden(self, tmp_path):
        """The README quickstart flow, end to end through the file system."""
        path = tmp_path / "design.bench"
        write_bench(generate_iscas("s953"), path)
        circuit = parse_bench(path.read_text(), name="design")
        assert validate_circuit(circuit).ok

        analyzer = SERAnalyzer(circuit)
        report = analyzer.analyze(sample=40, seed=1)
        assert len(report.nodes) == 40
        assert report.total_fit > 0

        curve = selective_hardening_curve(report, strength_factor=10.0)
        half = curve.steps[len(curve.steps) // 2]
        assert half.total_fit < curve.baseline_fit

    def test_epp_tracks_monte_carlo_at_scale(self):
        """On a Table 2-sized circuit, EPP stays near the MC reference —
        the substance of the paper's %Dif column."""
        circuit = generate_iscas("s953")
        sp = monte_carlo_signal_probabilities(circuit, n_vectors=20_000, seed=4)
        engine = EPPEngine(circuit, signal_probs=sp)
        sites = engine.analyze(sample=30, seed=5)
        reference = RandomSimulationEstimator(
            circuit,
            n_vectors=20_000,
            seed=6,
            state_weights={ff: sp[ff] for ff in circuit.flip_flops},
        ).estimate(list(sites))
        abs_sum = sum(
            abs(result.p_sensitized - reference[site])
            for site, result in sites.items()
        )
        ref_sum = sum(reference.values())
        pct_dif = 100.0 * abs_sum / ref_sum
        assert pct_dif < 20.0, pct_dif

    def test_epp_vs_mc_on_sequential_s27_all_sites(self):
        """s27 is tiny and heavily reconvergent, so individual sites can be
        well off (G8's two same-polarity paths reconverge at G9); the
        paper's accuracy claim is about the average, which must hold."""
        circuit = s27()
        sp = monte_carlo_signal_probabilities(circuit, n_vectors=50_000, seed=7)
        engine = EPPEngine(circuit, signal_probs=sp)
        reference = RandomSimulationEstimator(
            circuit,
            n_vectors=50_000,
            seed=8,
            state_weights={ff: sp[ff] for ff in circuit.flip_flops},
        ).estimate(circuit.gates)
        errors = [
            abs(engine.p_sensitized(site) - reference[site])
            for site in circuit.gates
        ]
        # Measured: mean ~0.13, max ~0.32 (G8/G9/G15/G16 form a dense
        # reconvergent cluster and the state bits correlate with the
        # off-path signals).  Large circuits average much lower — see
        # test_epp_tracks_monte_carlo_at_scale and the Table 2 harness.
        assert sum(errors) / len(errors) < 0.16, errors
        assert max(errors) < 0.40, errors

    def test_linear_cone_cost_claim(self):
        """Paper step 3: EPP work is one visit per on-path gate."""
        circuit = random_combinational(10, 300, seed=9)
        engine = EPPEngine(circuit)
        for site in circuit.gates[:20]:
            result = engine.node_epp(site)
            assert result.cone_size <= len(circuit.gates)
            assert result.cone_size == engine.cone(site).size

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
