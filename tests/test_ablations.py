"""The runnable ablation suite."""

import pytest

from repro.experiments.ablations import run_ablations


@pytest.fixture(scope="module")
def report():
    return run_ablations(seed=0, quick=True)


def test_all_four_studies_present(report):
    assert set(report.studies) == {"polarity", "baseline", "sp", "cop"}


def test_polarity_tracking_is_at_least_as_accurate(report):
    rows = dict(report.studies["polarity"])
    assert rows["tracked (paper)"]["pct_dif"] <= rows["polarity-blind"]["pct_dif"]


def test_serial_baseline_is_the_slow_one(report):
    rows = dict(report.studies["baseline"])
    assert rows["serial (2005-style)"]["time_ms"] > rows["bit-parallel + cone"]["time_ms"]
    assert rows["serial (2005-style)"]["time_ms"] > rows["EPP (paper)"]["time_ms"]


def test_sp_backend_accuracy_ordering(report):
    rows = dict(report.studies["sp"])
    assert rows["exact"]["mean_abs_err"] == pytest.approx(0.0, abs=1e-12)
    assert rows["cut"]["mean_abs_err"] <= rows["topological"]["mean_abs_err"]
    assert rows["monte_carlo"]["mean_abs_err"] < rows["topological"]["mean_abs_err"]


def test_cop_study_has_both_methods(report):
    labels = [label for label, _ in report.studies["cop"]]
    assert any("COP" in label for label in labels)
    assert any("EPP" in label for label in labels)


def test_format_renders_everything(report):
    text = report.format()
    for study in ("polarity", "baseline", "sp", "cop"):
        assert f"ablation: {study}" in text


def test_deterministic_accuracy_metrics():
    a = run_ablations(seed=3, quick=True)
    b = run_ablations(seed=3, quick=True)
    pa = dict(a.studies["polarity"])["tracked (paper)"]["pct_dif"]
    pb = dict(b.studies["polarity"])["tracked (paper)"]["pct_dif"]
    assert pa == pb
