"""SER-as-a-service: the long-lived analysis server (PR 8).

The service chaos suite pins the same invariant the sharded driver's
does: every degraded, recomputed or recovered response must be
``np.array_equal`` — bit-identical — to a clean in-process run, and
every shed request must carry a *typed*, retriable error.  Requests are
driven through the real asyncio machinery (``service._respond`` takes
raw wire lines) plus a socket/CLI smoke at the end.

Test names deliberately carry "crash" / "chaos": the CI fast job's
fault-injection smoke selects them with ``-k``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.epp import EPPEngine
from repro.core.epp_delta import EditSet
from repro.errors import (
    AnalysisError,
    ConfigError,
    ParseError,
    QueueFullError,
    ResilienceError,
    ServiceUnavailableError,
    WorkerCrashError,
)
from repro.netlist.library import c17
from repro.server import AnalysisService, CircuitBreaker, ServeClient
from repro.server import protocol
from repro.server.protocol import (
    WIRE_KNOB_KEYS,
    decode_line,
    edits_from_wire,
    error_info,
    parse_request,
)
from repro.testing import ServiceFaultInjector, ServiceFaultSpec


# ----------------------------------------------------------------- helpers


def repro_segments() -> set[str]:
    """The deterministically named worker segments currently in /dev/shm."""
    from repro.core.epp_shard import _SHM_NAME_PREFIX

    if not os.path.isdir("/dev/shm"):
        return set()
    return {
        name for name in os.listdir("/dev/shm")
        if name.startswith(_SHM_NAME_PREFIX)
    }


def wire(**obj) -> bytes:
    return json.dumps(obj).encode() + b"\n"


@contextlib.asynccontextmanager
async def serving(tmp_path, **kwargs):
    service = AnalysisService(tmp_path / "repro.sock", **kwargs)
    await service.start()
    try:
        yield service
    finally:
        await service.drain()


@pytest.fixture(scope="module")
def c17_ref():
    """Clean in-process reference: (p_sensitized, site order)."""
    snap = EPPEngine(c17()).snapshot()
    return np.asarray(snap.p_sensitized), list(snap.site_names)


def assert_matches_reference(result: dict, c17_ref) -> None:
    reference, sites = c17_ref
    assert result["sites"] == sites
    assert np.array_equal(np.asarray(result["p_sensitized"]), reference)


# ----------------------------------------------------------- circuit breaker


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=30.0)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow_sharded()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow_sharded()
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken, not cumulative

    def test_half_open_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.state == "half-open" and breaker.allow_sharded()
        breaker.record_failure()  # probe failed: re-open immediately
        assert breaker.state == "open" and breaker.trips == 2
        time.sleep(0.06)
        breaker.record_success()  # probe succeeded: close
        assert breaker.state == "closed" and breaker.allow_sharded()


# ------------------------------------------------------- service fault specs


class TestServiceFaults:
    def test_spec_validation(self):
        with pytest.raises(AnalysisError):
            ServiceFaultSpec("no_such_kind")
        with pytest.raises(AnalysisError):
            ServiceFaultSpec("stall_request", probability=1.5)
        with pytest.raises(AnalysisError):
            ServiceFaultSpec("stall_request", stall_s=-1.0)

    def test_matching_filters_op_and_request(self):
        faults = ServiceFaultInjector([
            ServiceFaultSpec("worker_error", op="analyze", request=2),
        ])
        assert faults.should("worker_error", "analyze", 2)
        assert not faults.should("worker_error", "analyze", 1)
        assert not faults.should("worker_error", "analyze_delta", 2)
        assert not faults.should("corrupt_artifact", "analyze", 2)

    def test_probabilistic_firing_is_deterministic(self):
        spec = ServiceFaultSpec("stall_request", probability=0.5)
        first = ServiceFaultInjector([spec], seed=7)
        second = ServiceFaultInjector([spec], seed=7)
        decisions = [first.should("stall_request", "analyze", i) for i in range(64)]
        assert decisions == [
            second.should("stall_request", "analyze", i) for i in range(64)
        ]
        assert any(decisions) and not all(decisions)

    def test_apply_stalls_and_raises(self):
        faults = ServiceFaultInjector([
            ServiceFaultSpec("stall_request", stall_s=0.05, request=0),
            ServiceFaultSpec("worker_error", request=1),
        ])
        started = time.monotonic()
        faults.apply("sweep", "analyze", 0)
        assert time.monotonic() - started >= 0.04
        with pytest.raises(WorkerCrashError):
            faults.apply("sweep", "analyze", 1)
        faults.apply("sweep", "analyze", 2)  # no spec: no-op


# ----------------------------------------------------------------- protocol


class TestProtocol:
    @pytest.mark.parametrize("obj", [
        {"op": "explode"},
        {"op": "analyze"},  # neither bench nor circuit
        {"op": "analyze", "circuit": "c17", "knobs": {"bogus": 1}},
        # The testing-only engine hook must not be reachable over the wire.
        {"op": "analyze", "circuit": "c17", "knobs": {"fault_injector": 1}},
        {"op": "analyze", "circuit": "c17", "knobs": []},
        {"op": "analyze", "circuit": "c17", "deadline": 0},
        {"op": "analyze", "circuit": "c17", "deadline": -1.5},
        {"op": "analyze", "circuit": "c17", "sites": "g1"},
        {"op": "analyze", "circuit": 17},
        {"op": "analyze_delta", "circuit": "c17"},  # no edits
        {"op": "analyze_delta", "circuit": "c17", "edits": []},
    ])
    def test_parse_request_rejects(self, obj):
        with pytest.raises(ConfigError):
            parse_request(obj)

    def test_parse_request_defaults(self):
        req = parse_request({"op": "analyze", "circuit": "c17"})
        assert req.client == "anon" and req.coalesce and not req.fit
        assert req.deadline is None and req.circuit_spec == "c17"
        bench = parse_request({"op": "analyze", "bench": "INPUT(a)\n"})
        assert bench.circuit_spec == "INPUT(a)\n"

    def test_decode_line_rejects_junk(self):
        with pytest.raises(ParseError):
            decode_line(b"not json\n")
        with pytest.raises(ParseError):
            decode_line(b"[1, 2]\n")

    def test_decode_line_rejects_oversize(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 16)
        with pytest.raises(ParseError):
            decode_line(b"x" * 17)

    def test_edits_from_wire_round_trip(self, c17_ref):
        _, sites = c17_ref
        edits = edits_from_wire([
            ["harden", sites[0], 10.0],
            ["set_sp", "N1", 0.25],
        ])
        assert isinstance(edits, EditSet)

    @pytest.mark.parametrize("ops", [
        [["no_such_kind", "g1"]],
        [["harden"]],  # missing node
        ["harden"],  # not a list op
        [["replace_gate", "g1", "no_such_type"]],
    ])
    def test_edits_from_wire_rejects(self, ops):
        with pytest.raises(ConfigError):
            edits_from_wire(ops)

    def test_error_taxonomy(self):
        info = error_info(QueueFullError("full", retry_after=1.25))
        assert info["retriable"] and info["retry_after"] == 1.25
        assert info["type"] == "QueueFullError"
        assert error_info(WorkerCrashError("boom", attempts=1))["retriable"]
        assert not error_info(ParseError("bad"))["retriable"]
        internal = error_info(ValueError("surprise"))
        assert internal["type"] == "InternalError" and not internal["retriable"]
        assert "ValueError" in internal["message"]

    def test_wire_knobs_exclude_local_hooks(self):
        assert "fault_injector" not in WIRE_KNOB_KEYS
        assert "deadline" not in WIRE_KNOB_KEYS  # top-level field, not a knob


# ------------------------------------------------------------- service: core


class TestServiceCore:
    def test_ping_stats_and_analyze(self, tmp_path, c17_ref):
        async def main():
            async with serving(tmp_path) as svc:
                pong = await svc._respond(wire(op="ping"))
                assert pong["ok"] and pong["result"]["pong"]
                response = await svc._respond(wire(
                    op="analyze", circuit="c17", fit=True, top=3
                ))
                assert response["ok"] and not response["result"]["degraded"]
                assert_matches_reference(response["result"], c17_ref)
                assert len(response["result"]["fit"]["nodes"]) == 3
                assert response["result"]["fit"]["total_fit"] > 0
                stats = (await svc._respond(wire(op="stats")))["result"]
                assert stats["counters"]["completed"] == 1
                assert stats["breaker"]["state"] == "closed"
                assert stats["artifacts"]["entries"] >= 1
        asyncio.run(main())

    def test_bench_text_matches_library_circuit(self, tmp_path, c17_ref):
        from repro.netlist.bench import write_bench

        text = write_bench(c17())

        async def main():
            async with serving(tmp_path) as svc:
                response = await svc._respond(wire(op="analyze", bench=text))
                assert response["ok"]
                assert_matches_reference(response["result"], c17_ref)
        asyncio.run(main())

    def test_result_cache_hit_is_identical(self, tmp_path, c17_ref):
        async def main():
            async with serving(tmp_path) as svc:
                first = await svc._respond(wire(op="analyze", circuit="c17"))
                second = await svc._respond(wire(op="analyze", circuit="c17"))
                assert not first["result"]["cached"]
                assert second["result"]["cached"]
                assert_matches_reference(second["result"], c17_ref)
                assert svc.counters["cache_hits"] == 1
        asyncio.run(main())

    def test_bad_request_is_typed_terminal_error(self, tmp_path):
        async def main():
            async with serving(tmp_path) as svc:
                response = await svc._respond(wire(op="analyze"))
                assert not response["ok"]
                assert response["error"]["type"] == "ConfigError"
                assert not response["error"]["retriable"]
        asyncio.run(main())

    def test_delta_chain_matches_in_process(self, tmp_path, c17_ref):
        _, sites = c17_ref
        engine = EPPEngine(c17())
        base = engine.snapshot()
        first = EditSet().harden(sites[0], 10.0)
        second = EditSet().set_sp("N1", 0.25)
        local1 = engine.analyze_delta(base, first)
        local2 = local1.engine.analyze_delta(local1, second)

        async def main():
            async with serving(tmp_path) as svc:
                await svc._respond(wire(op="analyze", circuit="c17"))
                d1 = await svc._respond(wire(
                    op="analyze_delta", circuit="c17",
                    edits=[["harden", sites[0], 10.0]],
                ))
                d2 = await svc._respond(wire(
                    op="analyze_delta", circuit="c17",
                    edits=[["set_sp", "N1", 0.25]],
                ))
                assert d1["result"]["revision"] == 1
                assert d2["result"]["revision"] == 2
                assert np.array_equal(
                    np.asarray(d1["result"]["p_sensitized"]),
                    np.asarray(local1.p_sensitized),
                )
                assert np.array_equal(
                    np.asarray(d2["result"]["p_sensitized"]),
                    np.asarray(local2.p_sensitized),
                )
        asyncio.run(main())


# -------------------------------------------------- admission & backpressure


class TestAdmission:
    def test_queue_full_sheds_with_retry_after(self, tmp_path):
        async def main():
            async with serving(tmp_path, workers=1, max_queue=1) as svc:
                responses = await asyncio.gather(*(
                    svc._respond(wire(
                        op="analyze", circuit="c17",
                        coalesce=False, client=f"client-{i}",
                    ))
                    for i in range(4)
                ))
                served = [r for r in responses if r["ok"]]
                shed = [r for r in responses if not r["ok"]]
                assert len(served) == 1 and len(shed) == 3
                for response in shed:
                    error = response["error"]
                    assert error["type"] == "QueueFullError"
                    assert error["retriable"]
                    assert error["retry_after"] >= 0.0
                assert svc.counters["shed"] == 3
                assert svc.counters["accepted"] == 1
        asyncio.run(main())

    def test_per_client_inflight_cap(self, tmp_path):
        async def main():
            async with serving(tmp_path, workers=1, client_inflight=1) as svc:
                responses = await asyncio.gather(
                    svc._respond(wire(
                        op="analyze", circuit="c17",
                        coalesce=False, client="greedy",
                    )),
                    svc._respond(wire(
                        op="analyze", circuit="c17", fit=True,
                        coalesce=False, client="greedy",
                    )),
                )
                shed = [r for r in responses if not r["ok"]]
                assert len(shed) == 1
                assert shed[0]["error"]["type"] == "QueueFullError"
                assert "greedy" in shed[0]["error"]["message"]
                # The cap releases with the request: a later one is served.
                again = await svc._respond(wire(
                    op="analyze", circuit="c17", coalesce=False, client="greedy",
                ))
                assert again["ok"]
        asyncio.run(main())

    def test_coalescing_shares_one_sweep(self, tmp_path, c17_ref):
        async def main():
            async with serving(tmp_path, workers=1) as svc:
                responses = await asyncio.gather(*(
                    svc._respond(wire(op="analyze", circuit="c17"))
                    for _ in range(4)
                ))
                for response in responses:
                    assert response["ok"]
                    assert_matches_reference(response["result"], c17_ref)
                assert svc.counters["coalesced"] == 3
                assert svc.counters["accepted"] == 1  # one admitted sweep
                assert sum(r["coalesced"] for r in responses) == 3
                assert not svc._sweeps  # no leaked shared futures
        asyncio.run(main())

    def test_delta_outranks_cold_sweep(self, tmp_path, c17_ref):
        _, sites = c17_ref
        faults = ServiceFaultInjector([
            ServiceFaultSpec("stall_request", stall_s=0.25, request=0),
        ])
        order = []

        async def tagged(svc, tag, line):
            response = await svc._respond(line)
            order.append(tag)
            return response

        async def main():
            async with serving(tmp_path, workers=1, faults=faults) as svc:
                blocker = asyncio.create_task(tagged(svc, "blocker", wire(
                    op="analyze", circuit="c17", coalesce=False,
                )))
                await asyncio.sleep(0.05)  # the worker is now stalled on it
                cold = asyncio.create_task(tagged(svc, "cold", wire(
                    op="analyze", circuit="c17", fit=True, coalesce=False,
                )))
                await asyncio.sleep(0)  # cold is enqueued first...
                delta = asyncio.create_task(tagged(svc, "delta", wire(
                    op="analyze_delta", circuit="c17",
                    edits=[["harden", sites[0], 10.0]],
                )))
                responses = await asyncio.gather(blocker, cold, delta)
                assert all(r["ok"] for r in responses)
                # ...but the incremental request is served before it.
                assert order.index("delta") < order.index("cold")
        asyncio.run(main())


# ------------------------------------------------------------------ deadlines


class TestDeadlines:
    def test_wait_and_queue_boundaries(self, tmp_path):
        faults = ServiceFaultInjector([
            ServiceFaultSpec("stall_request", stall_s=0.4, request=0),
        ])

        async def main():
            async with serving(tmp_path, workers=1, faults=faults) as svc:
                blocker = asyncio.create_task(svc._respond(wire(
                    op="analyze", circuit="c17", coalesce=False, client="a",
                )))
                await asyncio.sleep(0.05)
                # Queued behind the stalled request with a 0.15s budget:
                # the submitter's wait expires first...
                bounded = await svc._respond(wire(
                    op="analyze", circuit="c17", coalesce=False,
                    client="b", deadline=0.15,
                ))
                assert not bounded["ok"]
                assert bounded["error"]["type"] == "DeadlineExceededError"
                assert not bounded["error"]["retriable"]
                assert svc.counters["deadline_wait"] == 1
                # ...and when the worker finally dequeues it, the queue
                # boundary refuses to start work for a dead caller.
                blocked = await blocker
                assert blocked["ok"]
                for _ in range(100):
                    if svc.counters["deadline_queue"]:
                        break
                    await asyncio.sleep(0.02)
                assert svc.counters["deadline_queue"] == 1
        asyncio.run(main())

    def test_generous_deadline_succeeds(self, tmp_path, c17_ref):
        async def main():
            async with serving(tmp_path, default_deadline=30.0) as svc:
                response = await svc._respond(wire(op="analyze", circuit="c17"))
                assert response["ok"]
                assert_matches_reference(response["result"], c17_ref)
        asyncio.run(main())


# ---------------------------------------------------------------- chaos paths


class TestServiceChaos:
    def test_corrupt_artifact_recomputes_identically(self, tmp_path, c17_ref):
        faults = ServiceFaultInjector([
            ServiceFaultSpec("corrupt_artifact", op="analyze", request=1),
        ])

        async def main():
            async with serving(tmp_path, faults=faults) as svc:
                first = await svc._respond(wire(op="analyze", circuit="c17"))
                # The chaos hook flips a byte of the stored result right
                # before this lookup: integrity check -> quarantine ->
                # recompute, never a wrong answer.
                second = await svc._respond(wire(op="analyze", circuit="c17"))
                assert second["ok"]
                assert second["result"]["recomputed"]
                assert not second["result"]["cached"]
                assert_matches_reference(second["result"], c17_ref)
                assert np.array_equal(
                    np.asarray(second["result"]["p_sensitized"]),
                    np.asarray(first["result"]["p_sensitized"]),
                )
                assert svc.counters["recomputed"] == 1
                assert svc.store.stats()["corrupt"] == 1
                # The recompute rehabilitated the entry: next hit caches.
                third = await svc._respond(wire(op="analyze", circuit="c17"))
                assert third["result"]["cached"]
        asyncio.run(main())

    def test_worker_crash_trips_breaker_and_degrades_identically(
        self, tmp_path, c17_ref
    ):
        faults = ServiceFaultInjector([
            ServiceFaultSpec("worker_error", request=0),
            ServiceFaultSpec("worker_error", request=1),
        ])

        async def main():
            async with serving(
                tmp_path, jobs=2, faults=faults,
                breaker_threshold=2, breaker_cooldown=0.3,
            ) as svc:
                # Two synthetic pool failures: each degrades in-line...
                for index in range(2):
                    response = await svc._respond(wire(
                        op="analyze", circuit="c17", fit=True, top=index + 1,
                    ))
                    assert response["ok"]
                    assert response["result"]["degraded"]
                    assert_matches_reference(response["result"], c17_ref)
                assert svc.breaker.state == "open"
                assert svc.breaker.trips == 1
                # ...and the open breaker short-circuits the next request
                # straight to the in-process backend (no fault staged).
                shorted = await svc._respond(wire(
                    op="analyze", circuit="c17", fit=True, top=3,
                ))
                assert shorted["ok"] and shorted["result"]["degraded"]
                assert_matches_reference(shorted["result"], c17_ref)
                assert svc.counters["degraded"] == 3
                assert svc.counters["failed"] == 0
                # After the cooldown a half-open probe runs sharded again
                # and its success closes the breaker.
                await asyncio.sleep(0.35)
                probe = await svc._respond(wire(
                    op="analyze", circuit="c17", fit=True, top=4,
                ))
                assert probe["ok"] and not probe["result"]["degraded"]
                assert_matches_reference(probe["result"], c17_ref)
                assert svc.breaker.state == "closed"
        asyncio.run(main())

    def test_chaos_error_without_sharded_backend_is_retriable(self, tmp_path):
        # No jobs configured: nothing to degrade *to*, so the synthetic
        # fault surfaces as a typed retriable infrastructure error.
        faults = ServiceFaultInjector([ServiceFaultSpec("worker_error", request=0)])

        async def main():
            async with serving(tmp_path, faults=faults) as svc:
                response = await svc._respond(wire(op="analyze", circuit="c17"))
                assert not response["ok"]
                assert response["error"]["type"] == "WorkerCrashError"
                assert response["error"]["retriable"]
                assert svc.counters["failed"] == 1
        asyncio.run(main())


# ------------------------------------------------------------------- lifecycle


class TestLifecycle:
    def test_drain_rejects_queued_and_cleans_up(self, tmp_path):
        faults = ServiceFaultInjector([
            ServiceFaultSpec("stall_request", stall_s=0.3, request=0),
        ])
        before = repro_segments()

        async def main():
            svc = AnalysisService(
                tmp_path / "repro.sock", workers=1, faults=faults
            )
            await svc.start()
            running = asyncio.create_task(svc._respond(wire(
                op="analyze", circuit="c17", coalesce=False, client="a",
            )))
            await asyncio.sleep(0.05)
            queued = asyncio.create_task(svc._respond(wire(
                op="analyze", circuit="c17", coalesce=False, client="b",
            )))
            await asyncio.sleep(0)
            await svc.drain()
            finished, rejected = await asyncio.gather(running, queued)
            # The in-flight request finishes; the queued one is shed with
            # a retriable error so a replacement instance can take it.
            assert finished["ok"]
            assert rejected["error"]["type"] == "ServiceUnavailableError"
            assert rejected["error"]["retriable"]
            assert svc.counters["drained"] == 1
            # Admission after drain sheds immediately.
            late = await svc._respond(wire(op="analyze", circuit="c17"))
            assert late["error"]["type"] == "ServiceUnavailableError"
            assert not os.path.exists(svc.socket_path)
            # drain() is idempotent.
            await svc.drain()
        asyncio.run(main())
        assert repro_segments() == before  # no /dev/shm leaks

    def test_drain_before_start_is_safe(self, tmp_path):
        async def main():
            svc = AnalysisService(tmp_path / "repro.sock")
            await svc.drain()
            response = await svc._respond(wire(op="analyze", circuit="c17"))
            assert response["error"]["type"] == "ServiceUnavailableError"
        asyncio.run(main())

    def test_engine_lru_eviction_closes_state(self, tmp_path):
        async def main():
            async with serving(tmp_path, max_engines=1) as svc:
                await svc._respond(wire(op="analyze", circuit="c17"))
                await svc._respond(wire(op="analyze", circuit="s27"))
                assert len(svc._circuits) == 1
                stats = (await svc._respond(wire(op="stats")))["result"]
                assert stats["engines"] == 1
        asyncio.run(main())


# --------------------------------------------------------- socket & CLI smoke


class TestSocketAndCLI:
    def test_socket_round_trip_matches_in_process(self, tmp_path, c17_ref):
        async def main():
            async with serving(tmp_path, workers=2) as svc:
                def drive():
                    with ServeClient(svc.socket_path) as client:
                        assert client.ping()["pong"]
                        return client.analyze(circuit="c17")["result"]
                result = await asyncio.to_thread(drive)
                assert_matches_reference(result, c17_ref)
        asyncio.run(main())

    def test_socket_garbage_gets_typed_errors(self, tmp_path):
        async def main():
            async with serving(tmp_path) as svc:
                def drive():
                    with ServeClient(svc.socket_path) as client:
                        response = client.request({"op": "nonsense"})
                        assert response["error"]["type"] == "ConfigError"
                        # Raw junk on the same connection: still a typed,
                        # terminal ParseError, not a dropped socket.
                        client._sock.sendall(b"this is not json\n")
                        reply = json.loads(client._file.readline())
                        assert reply["error"]["type"] == "ParseError"
                        assert not reply["error"]["retriable"]
                        # Typed client-side re-raise of wire errors.
                        from repro.server.client import ServeRequestError

                        with pytest.raises(ServeRequestError) as excinfo:
                            client.call({"op": "nonsense"})
                        assert excinfo.value.type == "ConfigError"
                        assert not excinfo.value.retriable
                await asyncio.to_thread(drive)
        asyncio.run(main())

    def test_serve_cli_smoke_sigterm_drains(self, tmp_path, c17_ref):
        """The CI fast server smoke: start, round-trip, SIGTERM, no leaks."""
        sock = tmp_path / "cli.sock"
        before = repro_segments()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(sock),
             "--workers", "1", "--max-queue", "8"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            for _ in range(200):
                if sock.exists():
                    break
                time.sleep(0.05)
            assert sock.exists(), proc.stderr.read() if proc.poll() else "slow start"
            with ServeClient(sock) as client:
                assert client.ping()["pong"]
                result = client.analyze(circuit="c17", fit=True)["result"]
                assert_matches_reference(result, c17_ref)
                _, sites = c17_ref
                delta = client.analyze_delta(
                    circuit="c17", edits=[["harden", sites[0], 10.0]]
                )["result"]
                assert delta["revision"] == 1
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert "drained" in out
        assert not sock.exists()
        assert repro_segments() == before


# ----------------------------------------------------- real pool chaos (slow)


@pytest.mark.slow
def test_real_worker_crash_through_service_recovers(tmp_path):
    """Kernel-level chaos *through* the service: a worker process is
    killed mid-shard on the first attempt; the pool self-heals and the
    response is bit-identical to a clean in-process sweep."""
    from repro.netlist.generate import generate_iscas
    from repro.server.protocol import parse_request as _parse
    from repro.testing import FaultInjector, FaultSpec

    engine_faults = FaultInjector([FaultSpec("crash", shard=0, attempt=1)])
    circuit = generate_iscas("s953")
    reference = np.asarray(EPPEngine(circuit).snapshot().p_sensitized)

    async def main():
        async with serving(
            tmp_path, jobs=2, engine_faults=engine_faults
        ) as svc:
            # Pre-build the state whiteboxed so the crossover guard can
            # be disabled: worker processes must actually run (and die).
            req = _parse({"op": "analyze", "circuit": "s953"})
            state = await asyncio.to_thread(svc._state_for, req)
            backend = state.engine.sharded_backend(
                jobs=2, fault_injector=engine_faults
            )
            backend.min_process_work = 0
            response = await svc._respond(wire(op="analyze", circuit="s953"))
            assert response["ok"]
            assert not response["result"]["degraded"]
            assert np.array_equal(
                np.asarray(response["result"]["p_sensitized"]), reference
            )
            assert backend.stats["worker_crashes"] >= 1
            assert svc.breaker.state == "closed"
    asyncio.run(main())


# ------------------------------------------- crash durability (PR 9)


class TestDurableServiceJournal:
    def test_durable_idempotent_duplicate_served_from_journal(self, tmp_path):
        async def main():
            async with serving(
                tmp_path, store_dir=str(tmp_path / "store")
            ) as svc:
                req = dict(
                    op="analyze", circuit="c17", client="a",
                    idempotency_key="k1", coalesce=False,
                )
                first = await svc._respond(wire(**req))
                assert first["ok"]
                assert "journaled" not in first["result"]
                again = await svc._respond(wire(**req))
                assert again["result"]["journaled"] is True
                assert svc.counters["journal_hits"] == 1
                assert np.array_equal(
                    np.asarray(first["result"]["p_sensitized"]),
                    np.asarray(again["result"]["p_sensitized"]),
                )
        asyncio.run(main())

    def test_durable_journal_keys_are_client_scoped(self, tmp_path):
        async def main():
            async with serving(
                tmp_path, store_dir=str(tmp_path / "store")
            ) as svc:
                base = dict(
                    op="analyze", circuit="c17",
                    idempotency_key="shared-key", coalesce=False,
                )
                await svc._respond(wire(client="a", **base))
                other = await svc._respond(wire(client="b", **base))
                # Client b's first use of the key computes; no aliasing.
                assert other["ok"]
                assert "journaled" not in other["result"]
                assert svc.counters["journal_hits"] == 0
        asyncio.run(main())

    def test_durable_reused_key_for_different_request_rejected(self, tmp_path):
        async def main():
            async with serving(
                tmp_path, store_dir=str(tmp_path / "store")
            ) as svc:
                await svc._respond(wire(
                    op="analyze", circuit="c17", client="a",
                    idempotency_key="k1", coalesce=False,
                ))
                reused = await svc._respond(wire(
                    op="analyze", circuit="s27", client="a",
                    idempotency_key="k1", coalesce=False,
                ))
                assert not reused["ok"]
                assert reused["error"]["type"] == "ConfigError"
                assert not reused["error"]["retriable"]
        asyncio.run(main())

    def test_durable_journal_survives_server_restart(self, tmp_path, c17_ref):
        # The restarted-server shape: a duplicate retried against a brand
        # new process sharing the --store-dir replays the journaled
        # result off disk instead of re-sweeping.
        store = str(tmp_path / "store")
        req = dict(
            op="analyze", circuit="c17", client="a",
            idempotency_key="k1", coalesce=False,
        )

        async def main():
            async with serving(tmp_path, store_dir=store) as svc:
                first = await svc._respond(wire(**req))
                assert first["ok"]
            async with serving(tmp_path, store_dir=store, resume=True) as svc:
                again = await svc._respond(wire(**req))
                assert again["result"]["journaled"] is True
                assert svc.counters["journal_hits"] == 1
                assert_matches_reference(again["result"], c17_ref)
        asyncio.run(main())

    def test_durable_memory_only_service_skips_journal(self, tmp_path):
        async def main():
            async with serving(tmp_path) as svc:  # no store_dir
                req = dict(
                    op="analyze", circuit="c17", client="a",
                    idempotency_key="k1", coalesce=False,
                )
                await svc._respond(wire(**req))
                again = await svc._respond(wire(**req))
                # Still served from the in-memory journal tier.
                assert again["result"]["journaled"] is True
        asyncio.run(main())

    def test_durable_checkpoint_dir_injected_for_sharded_sweeps(self, tmp_path):
        from repro.core.resilience import Deadline
        from repro.server.protocol import parse_request

        async def main():
            async with serving(
                tmp_path, jobs=2, store_dir=str(tmp_path / "store")
            ) as svc:
                req = parse_request({"op": "analyze", "circuit": "c17"})
                knobs, degraded = svc._sweep_knobs(
                    req, Deadline(None), dedicated=False
                )
                assert not degraded
                assert knobs["checkpoint"].startswith(
                    os.path.join(str(tmp_path / "store"), "checkpoints")
                )
                # Wire requests can never smuggle a checkpoint path in.
                assert "checkpoint" not in WIRE_KNOB_KEYS
        asyncio.run(main())


class TestDurableLifecycle:
    def test_durable_drain_persists_pending_and_resume_recovers(self, tmp_path):
        faults = ServiceFaultInjector([
            ServiceFaultSpec("stall_request", stall_s=0.3, request=0),
        ])
        store = str(tmp_path / "store")
        pending_file = os.path.join(store, "pending_requests.json")

        async def main():
            svc = AnalysisService(
                tmp_path / "repro.sock", workers=1, faults=faults,
                store_dir=store,
            )
            await svc.start()
            running = asyncio.create_task(svc._respond(wire(
                op="analyze", circuit="c17", coalesce=False, client="a",
            )))
            await asyncio.sleep(0.05)
            queued = asyncio.create_task(svc._respond(wire(
                op="analyze", circuit="c17", coalesce=False, client="b",
                idempotency_key="retry-me",
            )))
            # The journal miss hops through a worker thread before the
            # request reaches the queue; give it time to be admitted.
            await asyncio.sleep(0.1)
            await svc.drain()
            finished, rejected = await asyncio.gather(running, queued)
            assert finished["ok"]
            assert rejected["error"]["retriable"]
            # The shed request's metadata reached disk atomically.
            assert os.path.exists(pending_file)
            with open(pending_file, encoding="utf-8") as handle:
                entries = json.load(handle)
            assert len(entries) == 1
            assert entries[0]["client"] == "b"
            assert entries[0]["idempotency_key"] == "retry-me"
            assert entries[0]["retriable"] is True

            successor = AnalysisService(
                tmp_path / "repro.sock", store_dir=store, resume=True,
            )
            await successor.start()
            assert successor.counters["pending_recovered"] == 1
            stats = successor.stats()
            assert stats["recovered_pending"][0]["idempotency_key"] == "retry-me"
            # Consumed, not replayed forever.
            assert not os.path.exists(pending_file)
            await successor.drain()
        asyncio.run(main())

    def test_durable_resume_without_predecessor_is_clean(self, tmp_path):
        async def main():
            svc = AnalysisService(
                tmp_path / "repro.sock",
                store_dir=str(tmp_path / "store"), resume=True,
            )
            await svc.start()
            assert svc.counters["pending_recovered"] == 0
            assert svc.stats()["recovered_pending"] == []
            response = await svc._respond(wire(op="analyze", circuit="c17"))
            assert response["ok"]
            await svc.drain()
        asyncio.run(main())


# -------------------------------------------------- client retry (PR 9)


def _stub_server(path, script):
    """A canned-reply unix-socket server for client retry tests.

    ``script`` is a list consumed one request at a time: a dict is sent
    back as the JSON reply; the string ``"drop"`` closes the connection
    without replying (the killed-server shape).
    """
    import socket as socket_module
    import threading

    server = socket_module.socket(
        socket_module.AF_UNIX, socket_module.SOCK_STREAM
    )
    server.bind(str(path))
    server.listen(8)
    server.settimeout(30.0)

    def serve():
        while script:
            try:
                conn, _ = server.accept()
            except OSError:
                return
            handle = conn.makefile("rb")
            while script:
                line = handle.readline()
                if not line:
                    break
                action = script.pop(0)
                if action == "drop":
                    break
                conn.sendall(json.dumps(action).encode() + b"\n")
            handle.close()
            conn.close()
        server.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


class TestDurableClientRetry:
    def test_durable_client_retries_retriable_then_succeeds(self, tmp_path):
        sock = tmp_path / "stub.sock"
        thread = _stub_server(sock, [
            {"ok": False, "error": {
                "type": "QueueFullError", "message": "full",
                "retriable": True, "retry_after": 0.01,
            }},
            {"ok": True, "result": {"pong": True}},
        ])
        with ServeClient(sock, retries=1, backoff=0.01) as client:
            assert client.ping()["pong"]
            assert client.last_attempts == 2
        thread.join(timeout=10)

    def test_durable_client_default_raises_immediately(self, tmp_path):
        sock = tmp_path / "stub.sock"
        _stub_server(sock, [
            {"ok": False, "error": {
                "type": "QueueFullError", "message": "full",
                "retriable": True, "retry_after": 0.01,
            }},
        ])
        with ServeClient(sock) as client:  # retries=0 preserves PR-8 shape
            with pytest.raises(QueueFullError):
                client.ping()
            assert client.last_attempts == 1

    def test_durable_client_never_retries_terminal_errors(self, tmp_path):
        from repro.server.client import ServeRequestError

        sock = tmp_path / "stub.sock"
        _stub_server(sock, [
            {"ok": False, "error": {
                "type": "ConfigError", "message": "bad knob",
                "retriable": False,
            }},
        ])
        with ServeClient(sock, retries=5, backoff=0.01) as client:
            with pytest.raises(ServeRequestError):
                client.ping()
            assert client.last_attempts == 1

    def test_durable_client_reconnects_once_on_drop(self, tmp_path):
        sock = tmp_path / "stub.sock"
        _stub_server(sock, [
            "drop",
            {"ok": True, "result": {"pong": True}},
        ])
        with ServeClient(sock, backoff_cap=0.05) as client:
            assert client.ping()["pong"]
            assert client.reconnects == 1

    def test_durable_client_reconnect_disabled_raises(self, tmp_path):
        from repro.errors import ConnectionLostError

        sock = tmp_path / "stub.sock"
        _stub_server(sock, ["drop"])
        with ServeClient(sock, reconnect=False) as client:
            with pytest.raises(ConnectionLostError):
                client.ping()
            # The taxonomy is preserved: callers catching the PR-8
            # ServiceUnavailableError still catch the drop.
            assert issubclass(ConnectionLostError, ServiceUnavailableError)

    def test_durable_client_rides_through_server_restart(
        self, tmp_path, c17_ref
    ):
        # The whole PR-9 story end to end: a client holding an open
        # connection sees its server drain and a successor start on the
        # same socket + store; its retried idempotent request reconnects
        # and replays the journaled result bit-identically.
        store = str(tmp_path / "store")
        sock = tmp_path / "repro.sock"

        async def main():
            first = AnalysisService(sock, store_dir=store)
            await first.start()
            client = ServeClient(sock, client_id="a", backoff_cap=0.05)

            def ask():
                return client.analyze(
                    circuit="c17", idempotency_key="k1", coalesce=False
                )["result"]

            try:
                one = await asyncio.to_thread(ask)
                await first.drain()
                successor = AnalysisService(sock, store_dir=store, resume=True)
                await successor.start()
                try:
                    two = await asyncio.to_thread(ask)
                finally:
                    await successor.drain()
                assert two["journaled"] is True
                assert client.reconnects == 1
                assert_matches_reference(two, c17_ref)
                assert np.array_equal(
                    np.asarray(one["p_sensitized"]),
                    np.asarray(two["p_sensitized"]),
                )
            finally:
                client.close()
        asyncio.run(main())
