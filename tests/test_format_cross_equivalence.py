"""Property: the two interchange formats preserve behaviour exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.generate import random_combinational
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.sim.logic_sim import BitParallelSimulator
from repro.sim.vectors import RandomVectorSource


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_gates=st.integers(min_value=5, max_value=60),
)
def test_bench_and_verilog_roundtrips_agree(seed, n_gates):
    """write->parse through BOTH formats yields simulation-identical circuits."""
    original = random_combinational(6, n_gates, seed=seed)
    via_bench = parse_bench(write_bench(original), name=original.name)
    via_verilog = parse_verilog(write_verilog(original), name=original.name)

    width = 128
    words = RandomVectorSource(original.inputs, seed=seed).next_words(width)
    reference = BitParallelSimulator(original).run_named(words, width)
    for circuit in (via_bench, via_verilog):
        values = BitParallelSimulator(circuit).run_named(words, width)
        for output in original.outputs:
            assert values[output] == reference[output]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_formats_preserve_node_inventory(seed):
    original = random_combinational(5, 30, seed=seed)
    via_bench = parse_bench(write_bench(original))
    via_verilog = parse_verilog(write_verilog(original))
    names = set(original.node_names())
    assert set(via_bench.node_names()) == names
    assert set(via_verilog.node_names()) == names
    for node in original:
        assert via_bench.node(node.name).gate_type is node.gate_type
        assert via_verilog.node(node.name).gate_type is node.gate_type


def test_sequential_cross_format():
    from repro.netlist.blocks import lfsr
    from repro.sim.logic_sim import simulate_sequential

    original = lfsr(4)
    via_bench = parse_bench(write_bench(original), name="lfsr4")
    via_verilog = parse_verilog(write_verilog(original), name="lfsr4")
    state = {f"q{i}": int(i == 0) for i in range(4)}
    traces = [
        simulate_sequential(c, lambda _: {"en": 1}, cycles=6, width=1, initial_state=state)
        for c in (original, via_bench, via_verilog)
    ]
    for t in range(6):
        reference = [traces[0].word(t, f"o{i}") for i in range(4)]
        for trace in traces[1:]:
            assert [trace.word(t, f"o{i}") for i in range(4)] == reference
