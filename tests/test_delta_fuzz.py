"""Property-based differential fuzzing of the incremental what-if path.

One oracle: for any random circuit, any structured edit set and any
backend knobs, ``analyze_delta(prev, edits)`` must be **bit-identical**
(``np.array_equal`` on every packed array) to a full ``snapshot`` of
the edited circuit.  This is stronger than the 1e-9 agreement the other
fuzz suites pin — splicing reuses retained columns byte-for-byte, so
any dirty-set under-approximation, sink-remap slip or segment-index bug
shows up as an exact mismatch, not a tolerance failure.

Edit sets are drawn from a menu that covers every structural op the
:class:`~repro.core.epp_delta.EditSet` grammar has — polarity swaps,
cone shrink (drop a fanin) and grow (add a primary input to a fanin
list), node addition with a new observable sink, local TMR, SP
overrides and metadata-only hardening — and chained two-delta runs
re-play a second draw on top of the first revision.
"""

import random

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.epp import EPPEngine
from repro.core.epp_delta import EditSet
from repro.netlist.gate_types import GateType
from repro.netlist.generate import random_combinational

_SWAPS = {
    GateType.AND: "nand", GateType.NAND: "and",
    GateType.OR: "nor", GateType.NOR: "or",
    GateType.XOR: "xnor", GateType.XNOR: "xor",
}
_WIDE = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR)


def draw_edits(circuit, seed: int, n_edits: int) -> EditSet:
    """A deterministic random edit set valid for ``circuit``.

    Every op keeps the circuit acyclic by construction: swaps and
    shrinks touch existing fanin lists only, grows and additions pull
    from primary inputs / existing signals, TMR is the library
    transform.  Falls back across menu entries until ``n_edits`` ops
    (or every entry proved inapplicable).
    """
    rng = random.Random(seed)
    edits = EditSet()
    gates = list(circuit.gates)
    # Ops draw against the *pre-edit* circuit, so a node one op already
    # restructured (e.g. a TMR voter) must not be re-targeted by a later
    # op that still believes the original gate type / fanin.
    used: set[str] = set()
    fresh = 0

    def swap():
        candidates = [
            g for g in gates
            if g not in used and circuit.node(g).gate_type in _SWAPS
        ]
        if not candidates:
            return False
        name = rng.choice(candidates)
        used.add(name)
        edits.replace_gate(name, _SWAPS[circuit.node(name).gate_type])
        return True

    def shrink():
        candidates = [
            g for g in gates
            if g not in used
            and circuit.node(g).gate_type in _WIDE
            and len(circuit.node(g).fanin) >= 3
        ]
        if not candidates:
            return False
        name = rng.choice(candidates)
        used.add(name)
        edits.replace_gate(name, fanin=circuit.node(name).fanin[:-1])
        return True

    def grow():
        candidates = [
            g for g in gates
            if g not in used
            and circuit.node(g).gate_type in _WIDE
            and len(circuit.node(g).fanin) == 2
        ]
        if not candidates:
            return False
        name = rng.choice(candidates)
        used.add(name)
        extra = rng.choice(circuit.inputs)
        edits.replace_gate(name, fanin=circuit.node(name).fanin + (extra,))
        return True

    def tmr():
        candidates = [
            g for g in gates
            if g not in used and circuit.node(g).gate_type.is_combinational
        ]
        if not candidates:
            return False
        name = rng.choice(candidates)
        used.add(name)
        edits.tmr(name)
        return True

    def add():
        nonlocal fresh
        fanin = rng.sample(list(circuit.inputs) + gates, k=2)
        name = f"fuzz_new_{fresh}"
        fresh += 1
        edits.add_gate(name, rng.choice(("and", "xor", "nor")), fanin)
        edits.mark_output(name)
        return True

    def set_sp():
        edits.set_sp(rng.choice(circuit.inputs), round(rng.random(), 3))
        return True

    def harden():
        edits.harden(rng.choice(gates), 2.0 + rng.random())
        return True

    menu = [swap, swap, shrink, grow, tmr, add, set_sp, harden]
    for _ in range(n_edits):
        for op in rng.sample(menu, k=len(menu)):
            if op():
                break
    return edits


def assert_delta_equals_full(delta):
    full = delta.engine.snapshot(
        sites=None if delta.default_sites else delta.site_names,
        **delta.knobs,
    )
    assert delta.site_names == full.site_names
    for left, right in zip(delta.packed, full.packed):
        assert np.array_equal(left, right)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    n_inputs=st.integers(min_value=3, max_value=8),
    n_gates=st.integers(min_value=6, max_value=50),
    seed=st.integers(min_value=0, max_value=2**16),
    edit_seed=st.integers(min_value=0, max_value=2**16),
    n_edits=st.integers(min_value=1, max_value=4),
    rows=st.sampled_from(("auto", "compact", "full")),
    schedule=st.sampled_from(("cone", "input")),
)
def test_delta_bit_identical_to_full(
    n_inputs, n_gates, seed, edit_seed, n_edits, rows, schedule
):
    circuit = random_combinational(n_inputs, n_gates, seed=seed)
    engine = EPPEngine(circuit)
    prev = engine.snapshot(rows=rows, schedule=schedule)
    edits = draw_edits(circuit, edit_seed, n_edits)
    delta = engine.analyze_delta(prev, edits)
    assert delta.stats["dirty"] + delta.stats["reused"] == delta.stats["sites"]
    assert_delta_equals_full(delta)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(
    n_inputs=st.integers(min_value=3, max_value=8),
    n_gates=st.integers(min_value=6, max_value=40),
    seed=st.integers(min_value=0, max_value=2**16),
    edit_seed=st.integers(min_value=0, max_value=2**16),
)
def test_chained_deltas_bit_identical(n_inputs, n_gates, seed, edit_seed):
    """Two rounds of edits, each splicing on top of the previous splice."""
    circuit = random_combinational(n_inputs, n_gates, seed=seed)
    engine = EPPEngine(circuit)
    prev = engine.snapshot()
    first = engine.analyze_delta(prev, draw_edits(circuit, edit_seed, 2))
    assert_delta_equals_full(first)
    second = first.apply(
        draw_edits(first.engine.circuit, edit_seed + 1, 2)
    )
    assert second.stats["chain_length"] == 2
    assert_delta_equals_full(second)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(
    n_inputs=st.integers(min_value=3, max_value=8),
    n_gates=st.integers(min_value=6, max_value=40),
    seed=st.integers(min_value=0, max_value=2**16),
    edit_seed=st.integers(min_value=0, max_value=2**16),
)
def test_delta_matches_scalar_oracle(n_inputs, n_gates, seed, edit_seed):
    """Beyond bit-identity with the packed path: 1e-9 against the scalar
    engine on the edited circuit, so splice and sweep can't be wrong in
    the same way."""
    circuit = random_combinational(n_inputs, n_gates, seed=seed)
    engine = EPPEngine(circuit)
    prev = engine.snapshot()
    delta = engine.analyze_delta(prev, draw_edits(circuit, edit_seed, 2))
    for name, value in zip(delta.site_names, delta.p_sensitized):
        assert value == pytest.approx(
            delta.engine.p_sensitized(name), abs=1e-9
        ), name
