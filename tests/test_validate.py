"""Structural validation."""

import pytest

from repro.errors import ValidationError
from repro.netlist.circuit import Circuit
from repro.netlist.gate_types import GateType
from repro.netlist.library import c17, counter, s27
from repro.netlist.validate import validate_circuit


class TestCleanCircuits:
    @pytest.mark.parametrize("factory", [c17, s27, lambda: counter(3)])
    def test_library_circuits_validate(self, factory):
        report = validate_circuit(factory())
        assert report.ok
        assert report.errors == []


class TestErrors:
    def test_undefined_driver(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.AND, ["a", "ghost"])
        circuit.mark_output("g")
        report = validate_circuit(circuit)
        assert not report.ok
        assert any("ghost" in e for e in report.errors)

    def test_no_observable_sink(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["a"])
        report = validate_circuit(circuit)
        assert any("no observable sinks" in e for e in report.errors)

    def test_combinational_cycle(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("p", GateType.AND, ["a", "q"])
        circuit.add_gate("q", GateType.OR, ["p", "a"])
        circuit.mark_output("q")
        report = validate_circuit(circuit)
        assert any("cycle" in e for e in report.errors)

    def test_strict_mode_raises(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(ValidationError):
            validate_circuit(circuit, strict=True)


class TestWarnings:
    def test_dead_gate_is_warning_not_error(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("used", GateType.NOT, ["a"])
        circuit.add_gate("dead", GateType.BUF, ["a"])
        circuit.mark_output("used")
        report = validate_circuit(circuit)
        assert report.ok
        assert any("dead" in w for w in report.warnings)

    def test_unused_input_warning(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("unused")
        circuit.add_gate("g", GateType.NOT, ["a"])
        circuit.mark_output("g")
        report = validate_circuit(circuit)
        assert report.ok
        assert any("unused" in w for w in report.warnings)

    def test_output_node_is_not_dead(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["a"])
        circuit.mark_output("g")
        report = validate_circuit(circuit)
        assert report.warnings == []
