"""P_sensitized combination across reachable outputs."""

import pytest

from repro.core.sensitization import combine_sensitization
from repro.errors import AnalysisError


def test_empty_is_zero():
    assert combine_sensitization([]) == 0.0


def test_single_output_passthrough():
    assert combine_sensitization([0.434]) == pytest.approx(0.434)


def test_two_outputs():
    assert combine_sensitization([0.5, 0.5]) == pytest.approx(0.75)


def test_certain_output_dominates():
    assert combine_sensitization([1.0, 0.1, 0.0]) == pytest.approx(1.0)


def test_zeros_contribute_nothing():
    assert combine_sensitization([0.0, 0.0, 0.3]) == pytest.approx(0.3)


def test_matches_product_formula():
    probs = [0.1, 0.25, 0.6]
    expected = 1 - (0.9 * 0.75 * 0.4)
    assert combine_sensitization(probs) == pytest.approx(expected)


def test_tiny_float_excursions_clamped():
    assert combine_sensitization([-1e-12]) == pytest.approx(0.0)
    assert combine_sensitization([1.0 + 1e-12]) == pytest.approx(1.0)


def test_real_violations_raise():
    with pytest.raises(AnalysisError):
        combine_sensitization([-0.2])
    with pytest.raises(AnalysisError):
        combine_sensitization([1.2])


def test_order_independent():
    probs = [0.3, 0.7, 0.05]
    assert combine_sensitization(probs) == pytest.approx(
        combine_sensitization(list(reversed(probs)))
    )
