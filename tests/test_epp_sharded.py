"""Sharded multi-process backend: equivalence, guards and lifecycle.

The sharded driver must reproduce the vector backend exactly — the shard
partition cannot change any per-site arithmetic, so agreement is pinned at
1e-9 on real process pools (``min_process_work`` forced to 0 so even
mid-size circuits exercise worker fan-out).  The crossover guard, the
``jobs`` plumbing through ``EPPEngine.analyze`` / ``SERAnalyzer`` and the
pool lifecycle are covered alongside.
"""

import os
import pickle

import pytest

np = pytest.importorskip("numpy")

from repro.core.analysis import SERAnalyzer
from repro.core.epp import EPPEngine
from repro.core.epp_shard import (
    ShardedEPPEngine,
    ShmHandle,
    default_jobs,
    default_transport,
    export_shm,
    import_shm,
    partition_shards,
)
from repro.errors import AnalysisError
from repro.netlist.generate import generate_iscas
from repro.netlist.library import s27

TOL = 1e-9

shm_only = pytest.mark.skipif(
    default_transport() != "shm",
    reason="POSIX shared memory unavailable on this platform",
)


def forced_sharded(engine: EPPEngine, jobs: int = 4):
    """A sharded driver with the crossover guard disabled, so worker
    processes are exercised even on circuits below the default threshold."""
    backend = engine.sharded_backend(jobs=jobs)
    backend.min_process_work = 0
    return backend


def assert_results_match(expected, got):
    assert list(expected) == list(got)  # same sites, same order
    for site, reference in expected.items():
        result = got[site]
        assert result.p_sensitized == pytest.approx(reference.p_sensitized, abs=TOL)
        assert result.cone_size == reference.cone_size
        assert set(result.sink_values) == set(reference.sink_values)
        for sink, value in reference.sink_values.items():
            assert result.sink_values[sink].isclose(value, tolerance=TOL), (
                site, sink, value, result.sink_values[sink])


class TestShardedEquivalence:
    """Acceptance pin: sharded(jobs=4) == vector to 1e-9 on s953/s1423."""

    @pytest.mark.parametrize("circuit_name", ["s953", "s1423"])
    def test_full_circuit_matches_vector(self, circuit_name):
        engine = EPPEngine(generate_iscas(circuit_name))
        with forced_sharded(engine, jobs=4) as backend:
            vector = engine.analyze(backend="vector")
            sharded = engine.analyze(backend="sharded", jobs=4)
            assert backend.pool_started  # the guard really was bypassed
        assert_results_match(vector, sharded)

    def test_p_sensitized_many_matches_vector(self):
        engine = EPPEngine(generate_iscas("s953"))
        site_ids = [engine._cones.resolve(site) for site in engine.default_sites()]
        with forced_sharded(engine, jobs=3) as backend:
            sharded = backend.p_sensitized_many(site_ids)
        vector = engine.vector_backend().p_sensitized_many(site_ids)
        assert np.abs(vector - sharded).max() <= TOL

    def test_collapse_matches_vector(self):
        engine = EPPEngine(generate_iscas("s953"))
        with forced_sharded(engine, jobs=2):
            vector = engine.analyze(backend="vector", collapse=True)
            sharded = engine.analyze(backend="sharded", jobs=2, collapse=True)
        assert_results_match(vector, sharded)

    @pytest.mark.slow
    def test_s9234_sharded_scaling_run_matches_vector(self):
        """The nightly sharded-scaling check: a full s9234 fan-out (the
        workload above the default crossover threshold) stays 1e-9-equal
        to the single-process vector sweep."""
        engine = EPPEngine(generate_iscas("s9234"))
        jobs = max(2, default_jobs())
        backend = engine.sharded_backend(jobs=jobs)
        try:
            vector = engine.analyze(backend="vector")
            sharded = engine.analyze(backend="sharded", jobs=jobs)
            assert backend.pool_started  # above threshold: processes engaged
        finally:
            backend.close()
        assert_results_match(vector, sharded)


class TestShmTransport:
    """Shared-memory result transport: zero per-shard array pickling."""

    @shm_only
    def test_export_import_round_trip(self):
        arrays = (
            np.linspace(0.0, 1.0, 97),
            np.arange(13, dtype=np.intp),
            np.zeros((0, 4)),
            np.random.default_rng(7).random((31, 4)),
        )
        handle = export_shm(arrays)
        views, shm = import_shm(handle)
        try:
            copies = [view.copy() for view in views]
        finally:
            del views
            shm.close()
            shm.unlink()
        for original, restored in zip(arrays, copies):
            assert original.dtype == restored.dtype
            assert np.array_equal(original, restored)

    @shm_only
    def test_handle_pickles_small_regardless_of_payload(self):
        """The acceptance pin: what crosses the pickle channel per shard is
        a fixed-size descriptor, not the packed arrays."""
        payload = (np.zeros(500_000), np.ones((250_000, 4)))
        handle = export_shm(payload)
        try:
            wire_bytes = len(pickle.dumps(handle, pickle.HIGHEST_PROTOCOL))
            array_bytes = sum(a.nbytes for a in payload)
            assert wire_bytes < 1024
            assert array_bytes > 1_000_000
        finally:
            _, shm = import_shm(handle)
            shm.close()
            shm.unlink()

    @shm_only
    def test_shm_round_trip_over_real_pool_matches_vector(self):
        """End-to-end over real worker processes: bit-equal results with
        zero pickled array bytes — every shard arrived via shared memory."""
        engine = EPPEngine(generate_iscas("s953"))
        with forced_sharded(engine, jobs=2) as backend:
            assert backend.transport == "shm"
            vector = engine.analyze(backend="vector")
            sharded = engine.analyze(backend="sharded", jobs=2)
            site_ids = [engine._cones.resolve(s) for s in engine.default_sites()]
            p_many = backend.p_sensitized_many(site_ids)
            assert backend.pool_started
        assert_results_match(vector, sharded)
        assert np.abs(
            engine.vector_backend().p_sensitized_many(site_ids) - p_many
        ).max() <= TOL
        assert backend.stats["shm_shards"] > 0
        assert backend.stats["pickle_shards"] == 0
        assert backend.stats["pickled_array_bytes"] == 0
        assert backend.stats["shm_bytes"] > 0

    @shm_only
    def test_shm_segments_are_unlinked_after_analysis(self):
        """No segment leaks: everything the workers created is gone from
        /dev/shm once the parent has materialized."""
        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
        engine = EPPEngine(generate_iscas("s953"))
        with forced_sharded(engine, jobs=2) as backend:
            engine.analyze(backend="sharded", jobs=2)
            assert backend.stats["shm_shards"] > 0
        if before is not None:
            leaked = {
                name for name in set(os.listdir("/dev/shm")) - before
                if name.startswith("psm_")
            }
            assert not leaked

    @shm_only
    def test_object_dtype_refused_before_any_segment_exists(self):
        """Object arrays would ship raw pointers cross-process; the guard
        fires before a segment is created, so nothing can leak."""
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this host")
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(AnalysisError, match="shared memory"):
            export_shm((np.zeros(4), np.array([object()], dtype=object)))
        assert not {
            name for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }

    @shm_only
    def test_close_mid_flight_unlinks_undelivered_segments(self):
        """Pool teardown with shard results still in flight (the
        KeyboardInterrupt-between-export-and-receive shape): workers have
        already relinquished segment ownership, so close() must drain and
        unlink every undelivered handle or it leaks in /dev/shm."""
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this host")
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=2)
        site_ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        before = set(os.listdir("/dev/shm"))
        shards = [site_ids[:200], site_ids[200:]]
        results = backend._map_shards(shards, full=True)
        next(results)  # submit everything, deliver exactly one shard
        assert backend._inflight  # at least one undelivered future remains
        backend.close()  # teardown mid-flight: must drain, not leak
        assert not backend._inflight
        # The generator is still suspended (its own cleanup never ran):
        # the segments must already be gone — close() did the draining.
        leaked = {
            name for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        results.close()
        assert not leaked

    @shm_only
    def test_failed_analysis_drains_undelivered_segments(self):
        """A worker exception mid-analysis must not leak the sibling
        shards' already-exported segments into /dev/shm."""
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this host")
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=2)
        good = [engine._cones.resolve(s) for s in engine.default_sites()]
        before = set(os.listdir("/dev/shm"))
        try:
            shards = [good, [10**9]]  # second shard raises in the worker
            with pytest.raises(Exception):
                for _ in backend._map_shards(shards, full=True):
                    pass
        finally:
            backend.close()
        leaked = {
            name for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        assert not leaked

    def test_pickle_transport_still_exact_and_counted(self):
        """The fallback wire format stays available and bit-equal; its
        array traffic is what the stats count."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=2)
        backend.min_process_work = 0
        backend.transport = "pickle"
        try:
            vector = engine.analyze(backend="vector")
            sharded = engine.analyze(backend="sharded", jobs=2)
        finally:
            backend.close()
        assert_results_match(vector, sharded)
        assert backend.stats["pickle_shards"] > 0
        assert backend.stats["shm_shards"] == 0
        assert backend.stats["pickled_array_bytes"] > 0

    def test_unknown_transport_rejected(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="unknown transport"):
            ShardedEPPEngine(engine.compiled, engine._sp, jobs=2,
                             transport="quic")

    def test_handle_is_tiny_dataclass(self):
        handle = ShmHandle("psm_test", (((4,), "<f8", 0),), 64)
        assert handle.name == "psm_test"
        assert handle.nbytes == 64


class TestShardScheduling:
    def test_cone_schedule_results_in_input_order(self):
        """The cone-clustered partition permutes shards; results must come
        back keyed and ordered by the caller's site list."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=2, schedule="cone")
        backend.min_process_work = 0
        sites = engine.default_sites()
        try:
            sharded = engine.analyze(sites=sites, backend="sharded", jobs=2,
                                     schedule="cone")
            site_ids = [engine._cones.resolve(s) for s in sites]
            p_many = backend.p_sensitized_many(site_ids)
        finally:
            backend.close()
        assert list(sharded) == sites
        vector = engine.analyze(sites=sites, backend="vector", schedule="cone")
        assert_results_match(vector, sharded)
        assert np.abs(
            engine.vector_backend().p_sensitized_many(site_ids) - p_many
        ).max() <= TOL

    def test_sharded_compact_rows_matches_vector(self):
        """Workers inherit the compacted-rows layout through the payload;
        a forced-pruned sharded run (compacted sweeps in every worker) is
        bit-equal to the in-process vector sweep."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=2, prune=True)
        backend.min_process_work = 0
        try:
            vector = engine.analyze(backend="vector", prune=True)
            sharded = engine.analyze(backend="sharded", jobs=2, prune=True)
            assert backend.pool_started
        finally:
            backend.close()
        assert backend.rows == "auto"
        assert_results_match(vector, sharded)

    def test_worker_rows_knob_forwarded(self):
        """rows="full" must reach worker backends through the payload."""
        from repro.core.epp_shard import _shard_worker_init, _worker_backend

        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=2, rows="full")
        assert backend.rows == "full"
        _shard_worker_init(backend.payload(), backend.payload_key())
        try:
            worker_backend = _worker_backend()
            assert worker_backend.rows == "full"
        finally:
            import repro.core.epp_shard as shard_module

            shard_module._WORKER_PAYLOAD = None
            shard_module._WORKER_BACKENDS.clear()
            shard_module._WORKER_STATS["plans_built"] = 0

    def test_worker_prune_knob_forwarded(self):
        """prune=False must reach worker backends through the payload."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=2, prune=False)
        backend.min_process_work = 0
        try:
            vector = engine.analyze(backend="vector", prune=False)
            sharded = engine.analyze(backend="sharded", jobs=2, prune=False)
        finally:
            backend.close()
        assert backend.prune is False
        assert_results_match(vector, sharded)

    def test_close_releases_local_buffers(self):
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=2)
        engine.analyze(backend="sharded", jobs=2)
        backend.local.min_vector_work = 0
        engine.analyze(backend="vector")  # populate local buffers
        assert backend.local._template is not None
        backend.close()
        assert backend.local._template is None
        assert not backend.local._buffer_slots


class TestCrossoverGuard:
    def test_small_circuits_never_pay_process_spinup(self):
        engine = EPPEngine(s27())
        backend = engine.sharded_backend(jobs=4)
        results = engine.analyze(backend="sharded", jobs=4)
        assert not backend.pool_started
        scalar = engine.analyze(backend="scalar")
        assert results.keys() == scalar.keys()
        for site in results:
            assert results[site].p_sensitized == pytest.approx(
                scalar[site].p_sensitized, abs=TOL)

    def test_single_job_stays_in_process_under_default_guard(self):
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=1)
        engine.analyze(backend="sharded", jobs=1)
        assert not backend.pool_started

    def test_single_site_stays_in_process_under_default_guard(self):
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=4)
        engine.analyze(sites=engine.default_sites()[:1], backend="sharded", jobs=4)
        assert not backend.pool_started

    def test_zero_min_process_work_forces_fanout_even_for_one_worker(self):
        """min_process_work=0 is an explicit force (the batch backend's
        min_vector_work=0 contract): even jobs=1 runs through the pool, so
        measurement harnesses never silently report in-process timings
        under a sharded label."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=1)
        try:
            vector = engine.analyze(backend="vector")
            sharded = engine.analyze(backend="sharded", jobs=1)
            assert backend.pool_started
        finally:
            backend.close()
        assert_results_match(vector, sharded)


class TestShardedSelection:
    def test_jobs_alone_selects_sharded(self):
        engine = EPPEngine(s27())
        results = engine.analyze(jobs=2)  # backend=None + jobs => sharded
        scalar = engine.analyze(backend="scalar")
        assert results.keys() == scalar.keys()
        for site in results:
            assert results[site].p_sensitized == pytest.approx(
                scalar[site].p_sensitized, abs=TOL)

    def test_jobs_with_non_sharded_backend_rejected(self):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="jobs="):
            engine.analyze(backend="vector", jobs=2)
        with pytest.raises(AnalysisError, match="jobs="):
            engine.analyze(backend="scalar", jobs=2)

    @pytest.mark.parametrize("bad", [0, -4])
    def test_invalid_jobs_rejected(self, bad):
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="jobs"):
            engine.analyze(backend="sharded", jobs=bad)

    @pytest.mark.parametrize("backend", [None, "vector", "scalar"])
    def test_invalid_jobs_rejected_at_analyze_boundary(self, backend):
        """jobs < 1 fails with the jobs error before any backend is
        resolved or constructed — even paired with a non-sharded backend,
        where the mutual-exclusion error used to mask it."""
        engine = EPPEngine(s27())
        with pytest.raises(AnalysisError, match="jobs must be >= 1"):
            engine.analyze(backend=backend, jobs=0)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_batch_size_rejected_with_caller_local_backend(self, bad):
        """A caller-supplied local backend used to bypass batch_size
        validation entirely, shipping a zero/negative chunk width straight
        into every worker."""
        engine = EPPEngine(generate_iscas("s953"))
        with pytest.raises(AnalysisError, match="batch_size"):
            ShardedEPPEngine(
                engine.compiled, engine._sp, jobs=2, batch_size=bad,
                local_backend=engine.vector_backend(),
            )

    def test_worker_chunk_width_never_rounds_to_zero(self):
        """jobs far above the circuit's budgeted width: the divided
        per-worker chunk budget must clamp to >= 1 site per chunk."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = ShardedEPPEngine(engine.compiled, engine._sp, jobs=4096)
        assert backend.worker_batch_size >= 1
        assert not backend.pool_started  # construction alone spawns nothing

    def test_analyzer_jobs_passthrough(self):
        circuit = generate_iscas("s953")
        vector_report = SERAnalyzer(circuit).analyze(backend="vector")
        analyzer = SERAnalyzer(circuit)
        with forced_sharded(analyzer.engine, jobs=2):
            sharded_report = analyzer.analyze(backend="sharded", jobs=2)
        assert sharded_report.nodes.keys() == vector_report.nodes.keys()
        for site in vector_report.nodes:
            assert sharded_report.nodes[site].fit == pytest.approx(
                vector_report.nodes[site].fit, rel=1e-9)

    def test_backend_cache_keyed_by_jobs(self):
        engine = EPPEngine(s27())
        first = engine.sharded_backend(jobs=2)
        assert engine.sharded_backend(jobs=2) is first
        second = engine.sharded_backend(jobs=3)
        assert second is not first
        assert second.jobs == 3

    def test_backend_cache_keyed_by_batch_size(self):
        """An explicit batch_size — even one equal to the derived default —
        must not reuse a pool whose workers chunk at the divided width."""
        engine = EPPEngine(s27())
        defaulted = engine.sharded_backend(jobs=2)
        explicit = engine.sharded_backend(jobs=2, batch_size=defaulted.batch_size)
        assert explicit is not defaulted
        assert explicit.worker_batch_size == defaulted.batch_size
        assert engine.sharded_backend(jobs=2, batch_size=defaulted.batch_size) is explicit


class TestWorkerPlanCache:
    """Worker-side plan/cone-index reuse keyed by circuit identity."""

    def test_repeated_shard_submissions_plan_once_per_worker(self):
        """Two full analyses plus a bulk query over one pool: every worker
        runs several shard tasks, yet builds its backend (plan + cone
        index) at most once — the ``plans_built`` counter pins it."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=2)
        site_ids = [engine._cones.resolve(s) for s in engine.default_sites()]
        try:
            engine.analyze(backend="sharded", jobs=2)
            engine.analyze(backend="sharded", jobs=2)  # resubmission
            backend.p_sensitized_many(site_ids)
            stats = backend.worker_stats()
        finally:
            backend.close()
        assert stats  # every worker answered
        for counters in stats.values():
            assert counters["plans_built"] <= 1
            assert counters["cached_circuits"] == counters["plans_built"]
        # The pool as a whole really planned somewhere (tasks ran).
        assert sum(c["plans_built"] for c in stats.values()) >= 1

    def test_warm_builds_the_plan_before_timed_regions(self):
        """warm() must leave every worker with its backend already built
        (plans_built == 1), so a subsequently timed sweep never pays
        planning."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=2)
        try:
            backend.warm()
            stats = backend.worker_stats()
        finally:
            backend.close()
        assert stats
        for counters in stats.values():
            assert counters["plans_built"] == 1

    def test_worker_backend_keeps_auto_prune(self):
        """The payload ships the resolved tri-state: a worker rebuilding
        its backend from it must land on prune="auto" (the dense
        fallback), not a truthy-coerced forced True."""
        from repro.core.epp_shard import _shard_worker_init, _worker_backend

        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=2)  # default prune=None
        assert backend.prune == "auto"
        _shard_worker_init(backend.payload(), backend.payload_key())
        try:
            worker_backend = _worker_backend()
            assert worker_backend.prune == "auto"
        finally:
            import repro.core.epp_shard as shard_module

            shard_module._WORKER_PAYLOAD = None
            shard_module._WORKER_BACKENDS.clear()
            shard_module._WORKER_STATS["plans_built"] = 0

    def test_payload_key_is_content_derived(self):
        """Same engine => stable key; different sweep knobs => different
        payload bytes => different cache identity."""
        engine = EPPEngine(generate_iscas("s953"))
        default = engine.sharded_backend(jobs=2)
        key = default.payload_key()
        assert key == default.payload_key()
        pruned_off = engine.sharded_backend(jobs=2, prune=False)
        assert pruned_off.payload_key() != key


class TestPoolLifecycle:
    def test_pool_reused_across_calls_and_respawns_after_close(self):
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=2)
        first = engine.analyze(backend="sharded", jobs=2)
        pool = backend._pool
        assert pool is not None
        engine.analyze(backend="sharded", jobs=2)
        assert backend._pool is pool  # reused, not respawned
        backend.close()
        assert not backend.pool_started
        backend.close()  # idempotent
        again = engine.analyze(backend="sharded", jobs=2)  # respawns cleanly
        assert backend.pool_started
        assert_results_match(first, again)
        backend.close()

    def test_warm_actually_forks_workers(self):
        """warm() must defeat the executor's lazy spawning: all workers
        exist (payload unpickled, plans rebuilt) before any timed call."""
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=2)
        try:
            backend.warm()
            assert backend.pool_started
            processes = getattr(backend._pool, "_processes", None)
            assert processes is not None
            assert len(processes) >= 2
        finally:
            backend.close()

    def test_payload_pickled_once(self):
        engine = EPPEngine(generate_iscas("s953"))
        backend = engine.sharded_backend(jobs=2)
        assert backend.payload() is backend.payload()  # cached bytes

    def test_empty_site_list(self):
        engine = EPPEngine(generate_iscas("s953"))
        backend = forced_sharded(engine, jobs=2)
        assert backend.analyze_sites([]) == {}
        assert not backend.pool_started


class TestPartition:
    def test_contiguous_balanced_partition(self):
        items = list(range(10))
        shards = partition_shards(items, 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert [x for shard in shards for x in shard] == items

    def test_more_shards_than_items(self):
        shards = partition_shards([1, 2], 8)
        assert shards == [[1], [2]]

    def test_single_shard(self):
        assert partition_shards([1, 2, 3], 1) == [[1, 2, 3]]
