"""On-path cone extraction (paper steps 1 and 2)."""

import pytest

from repro.core.cone import ConeExtractor, extract_cone
from repro.errors import AnalysisError
from repro.netlist.library import c17, figure1_circuit, s27


class TestFigure1:
    def test_on_path_members(self, fig1):
        compiled = fig1.compiled()
        cone = extract_cone(compiled, "A")
        names = {compiled.names[i] for i in cone.members}
        assert names == {"E", "D", "G", "H"}

    def test_gate_order_is_topological(self, fig1):
        compiled = fig1.compiled()
        cone = extract_cone(compiled, "A")
        order = [compiled.names[i] for i in cone.gate_order]
        assert order.index("E") < order.index("G")
        assert order.index("G") < order.index("H")
        assert order.index("D") < order.index("H")

    def test_sink_is_H(self, fig1):
        compiled = fig1.compiled()
        cone = extract_cone(compiled, "A")
        assert [compiled.names[i] for i in cone.sinks] == ["H"]

    def test_off_path_inputs_not_members(self, fig1):
        compiled = fig1.compiled()
        cone = extract_cone(compiled, "A")
        names = {compiled.names[i] for i in cone.members}
        assert not names & {"B", "C", "F"}


class TestStructure:
    def test_site_that_is_output_is_its_own_sink(self, c17_circuit):
        compiled = c17_circuit.compiled()
        cone = extract_cone(compiled, "N22")
        assert cone.size == 0
        assert cone.sinks == (compiled.index["N22"],)

    def test_dff_boundary(self, s27_circuit):
        compiled = s27_circuit.compiled()
        cone = extract_cone(compiled, "G10")  # feeds only DFF G5
        assert cone.size == 0
        assert [compiled.names[i] for i in cone.sinks] == ["G10"]

    def test_multi_sink_cone(self, c17_circuit):
        compiled = c17_circuit.compiled()
        cone = extract_cone(compiled, "N11")
        sink_names = {compiled.names[i] for i in cone.sinks}
        assert sink_names == {"N22", "N23"}

    def test_cone_size_counts_gates(self, c17_circuit):
        compiled = c17_circuit.compiled()
        assert extract_cone(compiled, "N11").size == 4  # N16, N19, N22, N23


class TestExtractor:
    def test_caching(self, c17_circuit):
        extractor = ConeExtractor(c17_circuit.compiled())
        assert extractor.cone("N11") is extractor.cone("N11")

    def test_resolve_by_id_and_name(self, c17_circuit):
        compiled = c17_circuit.compiled()
        extractor = ConeExtractor(compiled)
        by_name = extractor.cone("N11")
        by_id = extractor.cone(compiled.index["N11"])
        assert by_name is by_id

    def test_unknown_site(self, c17_circuit):
        extractor = ConeExtractor(c17_circuit.compiled())
        with pytest.raises(AnalysisError):
            extractor.cone("zzz")
        with pytest.raises(AnalysisError):
            extractor.cone(-1)
