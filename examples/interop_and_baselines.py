#!/usr/bin/env python3
"""Format interop and the estimator ladder on one circuit.

Takes the synthetic c880 (ISCAS'85 profile), round-trips it through both
interchange formats (ISCAS .bench and structural Verilog), then runs the
full ladder of P_sensitized estimators on the same sites:

    COP observability    one reverse pass for ALL nodes   (coarsest)
    EPP (the paper)      one forward pass PER node        (paper's point)
    Monte Carlo          bit-parallel fault injection     (statistical truth)

printing accuracy (vs Monte Carlo) and runtime per method — the
cost/accuracy ladder the paper positions EPP on.

Run:  python examples/interop_and_baselines.py
"""

import random
import time

from repro import EPPEngine, RandomSimulationEstimator
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.generate import generate_iscas
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.probability.cop import cop_observability


def main() -> None:
    circuit = generate_iscas("c880")
    print(f"circuit: {circuit}")

    # --- interop: .bench and .v round trips preserve the netlist --------
    from_bench = parse_bench(write_bench(circuit), name=circuit.name)
    from_verilog = parse_verilog(write_verilog(circuit), name=circuit.name)
    assert len(from_bench) == len(circuit) == len(from_verilog)
    print("round-trips: .bench OK, .v OK\n")

    sites = random.Random(1).sample(circuit.gates, 40)

    # --- estimator ladder ------------------------------------------------
    t0 = time.perf_counter()
    reference = RandomSimulationEstimator(circuit, n_vectors=30_000, seed=2).estimate(
        sites
    )
    t_mc = time.perf_counter() - t0

    t0 = time.perf_counter()
    cop_all = cop_observability(circuit)
    t_cop = time.perf_counter() - t0
    cop_values = {site: cop_all[site] for site in sites}

    engine = EPPEngine(circuit)
    t0 = time.perf_counter()
    epp_values = {site: engine.p_sensitized(site) for site in sites}
    t_epp = time.perf_counter() - t0

    def pct_dif(values):
        abs_sum = sum(abs(values[s] - reference[s]) for s in sites)
        return 100.0 * abs_sum / sum(reference.values())

    print(f"{'method':<28} {'time':>10} {'%Dif vs MC':>12}")
    print(f"{'COP (all nodes, 1 pass)':<28} {t_cop*1e3:>8.1f}ms {pct_dif(cop_values):>11.1f}%")
    print(f"{'EPP (paper, per node)':<28} {t_epp*1e3:>8.1f}ms {pct_dif(epp_values):>11.1f}%")
    print(f"{'Monte Carlo 30k (reference)':<28} {t_mc*1e3:>8.1f}ms {'—':>12}")

    print(
        "\nBoth analytical methods land within single-digit percent of the"
        "\nMonte Carlo reference at a fraction of its cost; which one is"
        "\ncloser varies per circuit (both share the independence bias)."
        "\nWhat EPP buys over COP is not raw average accuracy but (a) exact"
        "\nhandling of error polarity — COP is unboundedly wrong on"
        "\ninverting reconvergence like AND(x, NOT x) — and (b) the full"
        "\nfour-valued vector at every reachable output, which the SER"
        "\nmodel needs for per-sink latching and multi-cycle analysis."
    )


if __name__ == "__main__":
    main()
