#!/usr/bin/env python3
"""Build a custom datapath with the Circuit API and cross-check estimators.

Constructs a small ALU slice (adder + comparator + MUX bypass) directly
through the programmatic API, then answers three questions a reliability
engineer would ask:

1. Which internal node is most likely to corrupt an output if hit?
   (EPP engine, one pass per node)
2. Do the fast analytical numbers agree with brute-force fault injection?
   (modern bit-parallel baseline AND the exhaustive ground truth)
3. How much does an error really matter once the pipeline register and
   multi-cycle propagation are considered?  (latching + multi-cycle)

Run:  python examples/custom_circuit.py
"""

from repro import Circuit, EPPEngine, GateType, RandomSimulationEstimator, SERAnalyzer
from repro.sim.fault_sim import FaultInjector
from repro.sim.vectors import exhaustive_words


def build_alu_slice() -> Circuit:
    """2-bit add/compare slice with a MUX bypass and an output register."""
    circuit = Circuit("alu_slice")
    for name in ("a0", "a1", "b0", "b1", "bypass"):
        circuit.add_input(name)

    # 2-bit ripple adder.
    circuit.add_gate("s0", GateType.XOR, ["a0", "b0"])
    circuit.add_gate("c0", GateType.AND, ["a0", "b0"])
    circuit.add_gate("x1", GateType.XOR, ["a1", "b1"])
    circuit.add_gate("s1", GateType.XOR, ["x1", "c0"])
    circuit.add_gate("g1", GateType.AND, ["a1", "b1"])
    circuit.add_gate("p1", GateType.AND, ["x1", "c0"])
    circuit.add_gate("cout", GateType.OR, ["g1", "p1"])

    # Equality comparator.
    circuit.add_gate("e0", GateType.XNOR, ["a0", "b0"])
    circuit.add_gate("e1", GateType.XNOR, ["a1", "b1"])
    circuit.add_gate("eq", GateType.AND, ["e0", "e1"])

    # Bypass MUX on bit 0 and a registered flag.
    circuit.add_gate("out0", GateType.MUX, ["bypass", "s0", "a0"])
    circuit.add_dff("eq_reg", "eq")

    for name in ("out0", "s1", "cout", "eq_reg"):
        circuit.mark_output(name)
    return circuit


def main() -> None:
    circuit = build_alu_slice()
    print(f"circuit: {circuit}\n")

    # --- 1. EPP ranking -------------------------------------------------
    engine = EPPEngine(circuit)
    ranked = sorted(
        ((site, engine.p_sensitized(site)) for site in circuit.gates),
        key=lambda pair: -pair[1],
    )
    print("P_sensitized by EPP (one topological pass per site):")
    for site, value in ranked:
        print(f"  {site:6} {value:.4f}")

    # --- 2. cross-check against simulation ------------------------------
    injector = FaultInjector(circuit)
    words, width = exhaustive_words(circuit.inputs)
    # exhaustive over PIs x both register states
    estimator = RandomSimulationEstimator(circuit, n_vectors=30_000, seed=3)
    mc = estimator.estimate(circuit.gates)
    print("\nsite    EPP     MonteCarlo   |diff|")
    for site, epp_value in ranked:
        print(
            f"{site:6} {epp_value:.4f}   {mc[site]:.4f}      "
            f"{abs(epp_value - mc[site]):.4f}"
        )

    # --- 3. full SER view ------------------------------------------------
    analyzer = SERAnalyzer(circuit, engine=engine)
    report = analyzer.analyze()
    print("\n" + report.format_table(top=5))

    deep = analyzer.multi_cycle_observability("e0", cycles=4)
    shallow = analyzer.multi_cycle_observability("e0", cycles=1)
    print(
        f"\nmulti-cycle view of e0 (feeds the eq register): "
        f"1-cycle PO observability {shallow:.4f}, within 4 cycles {deep:.4f}"
    )


if __name__ == "__main__":
    main()
