#!/usr/bin/env python3
"""Multi-bit upsets: when one particle flips two adjacent nodes.

Single-SEU analysis (the paper's model) underpins most SER flows, but
scaled technologies collect charge across neighbouring cells.  This study
asks, on the carry-lookahead adder: *how does a double flip compare to the
two single flips it is made of?*

1. group same-level gates as a physical-adjacency proxy;
2. for each pair, measure exact MBU ``P_sensitized`` by union-cone fault
   injection and compare against the independence combination of the
   per-site EPP values;
3. find a concrete witness vector for the worst pair.

Run:  python examples/mbu_study.py
"""

from repro.core.epp import EPPEngine
from repro.core.mbu import (
    level_adjacent_groups,
    mbu_independence_estimate,
    mbu_p_sensitized,
)
from repro.core.witness import find_sensitizing_vector
from repro.netlist.blocks import carry_lookahead_adder


def main() -> None:
    circuit = carry_lookahead_adder(6)
    print(f"circuit: {circuit}\n")

    engine = EPPEngine(circuit)
    groups = level_adjacent_groups(circuit, group_size=2, max_groups=10)

    print(f"{'pair':<24} {'exact MBU':>10} {'indep est':>10} {'gap':>8}")
    worst_pair = None
    worst_value = -1.0
    for pair in groups:
        exact = mbu_p_sensitized(circuit, pair, n_vectors=20_000, seed=11)
        estimate = mbu_independence_estimate(engine, pair)
        print(
            f"{'+'.join(pair):<24} {exact:>10.4f} {estimate:>10.4f} "
            f"{abs(exact - estimate):>8.4f}"
        )
        if exact > worst_value:
            worst_value = exact
            worst_pair = pair

    print(
        "\nthe independence estimate ignores flip interaction (it can land"
        "\non either side of the exact value); signoff uses the simulated"
        "\nnumber, screening uses the cheap estimate."
    )

    single_a = engine.p_sensitized(worst_pair[0])
    single_b = engine.p_sensitized(worst_pair[1])
    print(
        f"\nworst pair {worst_pair}: joint {worst_value:.4f} "
        f"vs singles {single_a:.4f} / {single_b:.4f}"
    )
    witness = find_sensitizing_vector(circuit, worst_pair[0])
    print(f"a vector sensitizing {worst_pair[0]}: {witness}")


if __name__ == "__main__":
    main()
