#!/usr/bin/env python3
"""Quickstart: SER-analyze a circuit in a dozen lines.

Loads the embedded ISCAS'89 s27 benchmark, runs the EPP-based analysis the
paper proposes, and prints the per-node SER decomposition and the
vulnerability ranking — the list the paper says should drive selective
hardening.

Run:  python examples/quickstart.py
"""

from repro import EPPEngine, SERAnalyzer
from repro.netlist.library import s27


def main() -> None:
    circuit = s27()
    print(f"circuit: {circuit}\n")

    # 1. Error propagation probability of a single node (the paper's EPP).
    engine = EPPEngine(circuit)
    result = engine.node_epp("G9")
    print(f"EPP analysis of an SEU at G9:")
    for sink, value in result.sink_values.items():
        print(f"  reaches {sink}: P = {value}")
    print(f"  P_sensitized(G9) = {result.p_sensitized:.4f}\n")

    # 2. Whole-circuit SER = R_SEU x P_latched x P_sensitized, per node.
    analyzer = SERAnalyzer(circuit)
    report = analyzer.analyze()
    print(report.format_table(top=10))

    # 3. The single most vulnerable gate and its share of the circuit SER.
    top = report.ranked(1)[0]
    share = 100.0 * report.contribution(top.node)
    print(
        f"\nmost vulnerable node: {top.node} "
        f"({share:.1f}% of the circuit's {report.total_fit:.3e} FIT)"
    )


if __name__ == "__main__":
    main()
