#!/usr/bin/env python3
"""Triple modular redundancy — and an honest look at where EPP breaks.

TMR triplicates the logic and votes on the outputs, masking any single
SEU inside one replica.  This example:

1. TMRs the c17 benchmark with the netlist transform;
2. verifies by *fault injection* that single-replica SEUs are fully
   masked (P_sensitized drops to 0);
3. shows that the EPP method CANNOT see this — the two untouched replicas
   reconverge with the faulty one at the voter, and EPP's independence
   assumption treats them as uncorrelated off-path signals.

The library documents this as the method's known failure mode (it is the
same independence assumption behind the paper's ~5% average error, pushed
to its worst case).  Use fault injection for validating redundancy
schemes; use EPP for ranking and fast estimation in ordinary logic.

Run:  python examples/tmr_hardening.py
"""

from repro.netlist.library import c17
from repro.netlist.stats import circuit_stats
from repro.netlist.transform import triplicate
from repro.ser.hardening import evaluate_tmr


def main() -> None:
    original = c17()
    tmr = triplicate(original)
    print("original:", circuit_stats(original).format(), sep="\n")
    print("\nTMR:", circuit_stats(tmr).format(), sep="\n")

    comparison = evaluate_tmr(original, n_vectors=8192, seed=7)
    print(
        f"\nmean P_sensitized over {comparison.n_sites} gate sites"
        f" (SEU in one replica):"
    )
    print(f"  original circuit (fault injection): {comparison.original_mean_p_sens:.4f}")
    print(f"  TMR circuit     (fault injection): {comparison.injection_mean_p_sens:.4f}")
    print(f"  TMR circuit     (EPP estimate)   : {comparison.epp_mean_p_sens_tmr:.4f}")

    print(
        "\nfault injection confirms complete masking; EPP overestimates"
        "\nbecause the voter's other two inputs are *correlated* copies of"
        "\nthe correct value, which the off-path independence assumption"
        "\ncannot represent. This is the documented boundary of the method."
    )


if __name__ == "__main__":
    main()
