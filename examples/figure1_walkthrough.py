#!/usr/bin/env python3
"""The paper's Figure 1 worked example, reproduced step by step.

Builds the reconvergent example circuit, walks the EPP rules gate by gate
exactly as Section 2 of the paper does, and checks every number against
the published values:

    P(E) = 1(a-bar)
    P(D) = 0.2(a) + 0.8(0)
    P(G) = 0.7(a-bar) + 0.3(0)
    P(H) = 0.042(a) + 0.392(a-bar) + 0.168(0) + 0.398(1)

Run:  python examples/figure1_walkthrough.py
"""

from repro import EPPValue
from repro.core.rules import propagate_values
from repro.experiments.figure1 import run_figure1
from repro.netlist.gate_types import GateType
from repro.netlist.library import FIGURE1_SIGNAL_PROBS, figure1_circuit


def manual_walkthrough() -> None:
    """Apply Table 1 rules by hand, mirroring the paper's narrative."""
    print("manual rule-by-rule walkthrough")
    print("-" * 50)

    a = EPPValue.error_site()  # the SEU site: 1(a)
    print(f"SEU at gate A:      P(A) = {a}")

    e = propagate_values(GateType.NOT, [a])
    print(f"E = NOT(A):         P(E) = {e}")

    b = EPPValue.off_path(FIGURE1_SIGNAL_PROBS["B"])
    d = propagate_values(GateType.AND, [a, b])
    print(f"D = AND(A, B):      P(D) = {d}   (SP_B = 0.2 off-path)")

    f = EPPValue.off_path(FIGURE1_SIGNAL_PROBS["F"])
    g = propagate_values(GateType.AND, [e, f])
    print(f"G = AND(E, F):      P(G) = {g}   (SP_F = 0.7 off-path)")

    c = EPPValue.off_path(FIGURE1_SIGNAL_PROBS["C"])
    h = propagate_values(GateType.OR, [c, d, g])
    print(f"H = OR(C, D, G):    P(H) = {h}   (SP_C = 0.3 off-path)")

    print(f"\nP_sensitized(A) = Pa(H) + Pa-bar(H) = {h.error_probability:.3f}")
    print("note the reconvergence: A reaches H both through D (even parity)")
    print("and through E->G (odd parity); the polarity split keeps both.\n")


def engine_run() -> None:
    """The same numbers out of the real engine (what the tests pin)."""
    print("engine regeneration")
    print("-" * 50)
    result = run_figure1()
    print(result.format())


def main() -> None:
    circuit = figure1_circuit()
    print(f"circuit: {circuit}")
    print(f"gates: " + ", ".join(
        f"{n.name}={n.gate_type.value}({','.join(n.fanin)})"
        for n in circuit if n.fanin
    ) + "\n")
    manual_walkthrough()
    engine_run()


if __name__ == "__main__":
    main()
