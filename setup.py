"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` (and plain ``python setup.py develop``)
work in offline environments that lack the ``wheel`` package needed for
PEP 660 editable builds.
"""

from setuptools import setup

setup()
